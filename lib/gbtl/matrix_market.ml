exception Parse_error of string

type field = Real | Integer | Pattern
type symmetry = General | Symmetric | Skew_symmetric

type header = {
  field : field;
  symmetry : symmetry;
  nrows : int;
  ncols : int;
  nnz : int;
}

(* The parser is written against located error values; the legacy
   exception entry points wrap them.  [Located] never escapes this
   module. *)
exception Located of Error.t

let fail_at file line fmt =
  Printf.ksprintf (fun s -> raise (Located (Error.at_line ~file ~line s))) fmt

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Line-counting reader so every diagnostic can point at its line. *)
type cursor = { ic : in_channel; file : string; mutable lineno : int }

let next_line cur =
  match input_line cur.ic with
  | line ->
    cur.lineno <- cur.lineno + 1;
    Some line
  | exception End_of_file -> None

let parse_header cur =
  let banner =
    match next_line cur with
    | Some l -> l
    | None -> fail_at cur.file 1 "empty file"
  in
  let field, symmetry =
    match split_ws (String.lowercase_ascii banner) with
    | [ "%%matrixmarket"; "matrix"; "coordinate"; f; s ] ->
      let field =
        match f with
        | "real" -> Real
        | "integer" -> Integer
        | "pattern" -> Pattern
        | _ -> fail_at cur.file cur.lineno "unsupported field type: %s" f
      in
      let symmetry =
        match s with
        | "general" -> General
        | "symmetric" -> Symmetric
        | "skew-symmetric" -> Skew_symmetric
        | _ -> fail_at cur.file cur.lineno "unsupported symmetry: %s" s
      in
      (field, symmetry)
    | _ -> fail_at cur.file cur.lineno "unsupported banner: %s" banner
  in
  let rec size_line () =
    match next_line cur with
    | None -> fail_at cur.file cur.lineno "missing size line"
    | Some line ->
      let line = String.trim line in
      if line = "" || line.[0] = '%' then size_line () else line
  in
  let dim what tok =
    match int_of_string_opt tok with
    | Some v when v >= 0 -> v
    | Some v -> fail_at cur.file cur.lineno "negative %s: %d" what v
    | None -> fail_at cur.file cur.lineno "size line: bad %s %S" what tok
  in
  match split_ws (size_line ()) with
  | [ r; c; n ] ->
    { field; symmetry; nrows = dim "row count" r; ncols = dim "column count" c;
      nnz = dim "entry count" n }
  | toks ->
    fail_at cur.file cur.lineno "malformed size line (%d fields, want 3)"
      (List.length toks)

let parse_value (type a) (dt : a Dtype.t) cur field tokens : a =
  match (field, tokens) with
  | Pattern, [] -> Dtype.one dt
  | (Real | Integer), [ tok ] -> (
    match float_of_string_opt tok with
    | Some f -> Dtype.of_float dt f
    | None -> fail_at cur.file cur.lineno "bad value token: %s" tok)
  | Pattern, _ :: _ ->
    fail_at cur.file cur.lineno "pattern entry carries a value"
  | (Real | Integer), _ ->
    fail_at cur.file cur.lineno "entry has %d value tokens, want 1"
      (List.length tokens)

(* One-based in the file; anything non-numeric (including an integer too
   big for native int) or outside [1, bound] is malformed input, not a
   crash further down in of_coo. *)
let parse_index cur what bound tok =
  match int_of_string_opt tok with
  | None -> fail_at cur.file cur.lineno "%s index is not a number: %S" what tok
  | Some i when i < 1 || i > bound ->
    fail_at cur.file cur.lineno "%s index %d outside [1, %d]" what i bound
  | Some i -> i - 1

let parse_coo dt cur =
  let h = parse_header cur in
  let entries = ref [] in
  let count = ref 0 in
  let rec loop () =
    match next_line cur with
    | None -> ()
    | Some raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '%' then begin
        (match split_ws line with
        | rt :: ct :: rest ->
          if !count >= h.nnz then
            fail_at cur.file cur.lineno "more entries than the declared %d"
              h.nnz;
          let r = parse_index cur "row" h.nrows rt in
          let c = parse_index cur "column" h.ncols ct in
          let v = parse_value dt cur h.field rest in
          entries := (r, c, v) :: !entries;
          (match h.symmetry with
          | General -> ()
          | Symmetric -> if r <> c then entries := (c, r, v) :: !entries
          | Skew_symmetric ->
            if r <> c then
              entries :=
                (c, r, Unaryop.(apply (additive_inverse dt) v)) :: !entries);
          incr count
        | _ -> fail_at cur.file cur.lineno "malformed entry line: %s" line)
      end;
      loop ()
  in
  loop ();
  if !count < h.nnz then
    fail_at cur.file cur.lineno
      "truncated file: %d entries read, %d declared" !count h.nnz;
  (h, List.rev !entries)

let read_coo_result dt path =
  match open_in path with
  | exception Sys_error m -> Result.Error (Error.in_file ~file:path m)
  | ic -> (
    match
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> parse_coo dt { ic; file = path; lineno = 0 })
    with
    | result -> Ok result
    | exception Located e -> Result.Error e
    | exception Sys_error m ->
      (* I/O failure mid-read (device error, file shrank under us) *)
      Result.Error (Error.in_file ~file:path m))

let read_result dt path =
  match read_coo_result dt path with
  | Result.Error _ as e -> e
  | Ok (h, coo) -> Ok (Smatrix.of_coo dt h.nrows h.ncols coo)

(* Legacy exception-raising entry points. *)

let read_header ic =
  try parse_header { ic; file = "<channel>"; lineno = 0 }
  with Located e -> raise (Parse_error e.Error.what)

let read_coo dt path =
  match read_coo_result dt path with
  | Ok r -> r
  | Result.Error e -> raise (Parse_error (Error.to_string e))

let read dt path =
  match read_result dt path with
  | Ok m -> m
  | Result.Error e -> raise (Parse_error (Error.to_string e))

let write ?comment m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let dt = Smatrix.dtype m in
      let field = if Dtype.is_integral dt then "integer" else "real" in
      Printf.fprintf oc "%%%%MatrixMarket matrix coordinate %s general\n"
        field;
      (match comment with
      | Some c -> Printf.fprintf oc "%% %s\n" c
      | None -> ());
      Printf.fprintf oc "%d %d %d\n" (Smatrix.nrows m) (Smatrix.ncols m)
        (Smatrix.nvals m);
      Smatrix.iter
        (fun r c x ->
          Printf.fprintf oc "%d %d %s\n" (r + 1) (c + 1) (Dtype.to_string dt x))
        m)
