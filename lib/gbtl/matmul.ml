let dim_err = Error.raise_dims

(* Dense scatter of a sparse vector, reused across rows by gather kernels. *)
let scatter_vector sr u =
  let spa = Spa.create (Svector.size u) ~dummy:(Semiring.zero sr) in
  Svector.iter (fun i x -> Spa.set spa i x) u;
  spa

(* Gather kernel: out_i = ⊕_j term (row_value_j, u_j) over row i's entries
   that hit stored positions of [u].  [term] fixes the ⊗ operand order. *)
let gather_rows sr ~term ~allowed a u =
  let t = Entries.create () in
  let uspa = scatter_vector sr u in
  let add = Semiring.add sr in
  for i = 0 to Smatrix.nrows a - 1 do
    if allowed i then begin
      let acc = ref (Semiring.zero sr) in
      let hit = ref false in
      Smatrix.iter_row
        (fun j x ->
          if Spa.occupied uspa j then begin
            let v = term x (Spa.get uspa j) in
            acc := (if !hit then add !acc v else v);
            hit := true
          end)
        a i;
      if !hit then Entries.push t i !acc
    end
  done;
  t

(* Scatter kernel: for each stored u_j, fan row j of [a] into an SPA over
   the output dimension. *)
let scatter_rows sr ~term ~out_size a u =
  let spa = Spa.create out_size ~dummy:(Semiring.zero sr) in
  let add = Semiring.add sr in
  Svector.iter
    (fun j uj ->
      Smatrix.iter_row
        (fun c x -> Spa.accumulate spa c (term x uj) ~add)
        a j)
    u;
  Spa.extract spa

let mxv ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    ?(transpose_a = false) sr ~out a u =
  let arows, acols =
    if transpose_a then (Smatrix.ncols a, Smatrix.nrows a) else Smatrix.shape a
  in
  if acols <> Svector.size u then
    dim_err ~op:"mxv"
      ~expected:(Printf.sprintf "vector size %d" acols)
      ~actual:(Error.size_str (Svector.size u));
  if Svector.size out <> arows then
    dim_err ~op:"mxv"
      ~expected:(Printf.sprintf "output size %d" arows)
      ~actual:(Error.size_str (Svector.size out));
  Mask.v_check_size mask (Svector.size out);
  let mul = Semiring.mul sr in
  let t =
    if transpose_a then
      (* (Aᵀu)_i = ⊕_j A(j,i) ⊗ u(j): scatter over rows of A present in u. *)
      scatter_rows sr ~term:mul ~out_size:arows a u
    else
      gather_rows sr ~term:mul ~allowed:(Mask.v_allowed mask) a u
  in
  Output.write_vector ~mask ~accum ~replace ~out ~t

let vxm ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    ?(transpose_a = false) sr ~out u a =
  let arows, acols =
    if transpose_a then (Smatrix.ncols a, Smatrix.nrows a) else Smatrix.shape a
  in
  if arows <> Svector.size u then
    dim_err ~op:"vxm"
      ~expected:(Printf.sprintf "vector size %d" arows)
      ~actual:(Error.size_str (Svector.size u));
  if Svector.size out <> acols then
    dim_err ~op:"vxm"
      ~expected:(Printf.sprintf "output size %d" acols)
      ~actual:(Error.size_str (Svector.size out));
  Mask.v_check_size mask (Svector.size out);
  let mul = Semiring.mul sr in
  let term a_val u_val = mul u_val a_val in
  let t =
    if transpose_a then
      (* (u Aᵀ)_i = ⊕_j u(j) ⊗ A(i,j): gather over rows of A. *)
      gather_rows sr ~term ~allowed:(Mask.v_allowed mask) a u
    else scatter_rows sr ~term ~out_size:acols a u
  in
  Output.write_vector ~mask ~accum ~replace ~out ~t

(* Gustavson: C(i,:) = ⊕_k A(i,k) ⊗ B(k,:), SPA per output row. *)
let mxm_gustavson sr ?keep a b ncols_out =
  let add = Semiring.add sr and mul = Semiring.mul sr in
  let spa = Spa.create ncols_out ~dummy:(Semiring.zero sr) in
  Array.init (Smatrix.nrows a) (fun i ->
      Spa.clear spa;
      Smatrix.iter_row
        (fun k aik ->
          Smatrix.iter_row
            (fun j bkj -> Spa.accumulate spa j (mul aik bkj) ~add)
            b k)
        a i;
      match keep with
      | None -> Spa.extract spa
      | Some keep -> Spa.extract_filtered spa ~keep:(keep i))

(* Dot kernel for C = A ⊕.⊗ Bᵀ restricted to mask-allowed positions:
   C(i,j) = ⊕_k A(i,k) ⊗ B(j,k), a sorted two-pointer merge of two rows. *)
let mxm_dot sr ~allowed_cols a b =
  let add = Semiring.add sr and mul = Semiring.mul sr in
  let arp = Smatrix.unsafe_rowptr a
  and aci = Smatrix.unsafe_colidx a
  and avs = Smatrix.unsafe_values a in
  let brp = Smatrix.unsafe_rowptr b
  and bci = Smatrix.unsafe_colidx b
  and bvs = Smatrix.unsafe_values b in
  Array.init (Smatrix.nrows a) (fun i ->
      let row = Entries.create () in
      Array.iter
        (fun j ->
          let p = ref arp.(i)
          and pe = arp.(i + 1)
          and q = ref brp.(j)
          and qe = brp.(j + 1) in
          let acc = ref (Semiring.zero sr) and hit = ref false in
          while !p < pe && !q < qe do
            let ka = aci.(!p) and kb = bci.(!q) in
            if ka < kb then incr p
            else if kb < ka then incr q
            else begin
              let v = mul avs.(!p) bvs.(!q) in
              acc := (if !hit then add !acc v else v);
              hit := true;
              incr p;
              incr q
            end
          done;
          if !hit then Entries.push row j !acc)
        (allowed_cols i);
      row)

let mxm ?(mask = Mask.No_mmask) ?accum ?(replace = false)
    ?(transpose_a = false) ?(transpose_b = false) sr ~out a b =
  let a = if transpose_a then Smatrix.transpose a else a in
  let arows, acols = Smatrix.shape a in
  let brows, bcols =
    if transpose_b then (Smatrix.ncols b, Smatrix.nrows b) else Smatrix.shape b
  in
  if acols <> brows then
    dim_err ~op:"mxm"
      ~expected:(Printf.sprintf "inner dimension %d" acols)
      ~actual:(string_of_int brows);
  if Smatrix.shape out <> (arows, bcols) then
    dim_err ~op:"mxm"
      ~expected:(Printf.sprintf "output %s" (Error.shape_str arows bcols))
      ~actual:(Error.shape_str (Smatrix.nrows out) (Smatrix.ncols out));
  Mask.m_check_shape mask arows bcols;
  let structural_mask r = Mask.m_row_allowed_list mask r in
  let t =
    match mask with
    | Mask.Mmask { complemented = false; _ } when transpose_b ->
      (* Masked dot-product path: only allowed (i, j) cells are computed. *)
      let allowed_cols i =
        match structural_mask i with Some cols -> cols | None -> [||]
      in
      mxm_dot sr ~allowed_cols a b
    | Mask.Mmask { complemented = false; _ } ->
      let keep i =
        let allow = Mask.m_row_allowed mask i in
        fun j -> allow j
      in
      mxm_gustavson sr ~keep a (if transpose_b then Smatrix.transpose b else b)
        bcols
    | Mask.No_mmask | Mask.Mmask { complemented = true; _ } ->
      mxm_gustavson sr a (if transpose_b then Smatrix.transpose b else b) bcols
  in
  Output.write_matrix ~mask ~accum ~replace ~out ~t
