(** Switch and counters for the format-polymorphic storage layer.

    [enabled] gates every layout heuristic: CSC dispatch of transposed
    matrix-vector products, sparse/dense vector auto-switching, and
    sparse vector masks.  With it off the containers behave exactly like
    the CSR-only / sorted-pairs library (the baseline the format bench
    compares against).  Explicit conversions ([Smatrix.ensure_csc],
    [Svector.densify], ...) always work regardless of the switch.

    The [OGB_FORMATS] environment variable ([0]/[off]/[false]) disables
    the heuristics at startup. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced to the given value (restored on
    exit, including on exceptions). *)

(** {2 Recording} (called by the container and kernel layers) *)

val record_csc_build : unit -> unit
val record_densify : auto:bool -> unit
val record_sparsify : auto:bool -> unit
val record_pull : unit -> unit
val record_push : unit -> unit
val record_sparse_mask : unit -> unit

val get_csc_builds : unit -> int
(** Direct read of one counter (the [extract_col] regression test hooks
    this to prove columns are served from the cached CSC side). *)

val counters : unit -> (string * int) list
(** All counters as [(name, count)], fixed order: csc_builds, densify,
    sparsify, auto_densify, auto_sparsify, pull_steps, push_steps,
    sparse_masks. *)

val reset : unit -> unit
