let union_entries f a b = Output.merge_with f a b

let intersect_entries f a b =
  let out = Entries.create () in
  let na = Entries.length a and nb = Entries.length b in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let ia = Entries.get_idx a !i and ib = Entries.get_idx b !j in
    if ia < ib then incr i
    else if ib < ia then incr j
    else begin
      Entries.push out ia (f (Entries.get_val a !i) (Entries.get_val b !j));
      incr i;
      incr j
    end
  done;
  out

let check_vector_sizes ctx u v =
  if Svector.size u <> Svector.size v then
    Error.raise_dims ~op:ctx
      ~expected:(Error.size_str (Svector.size u))
      ~actual:(Error.size_str (Svector.size v))

let vector_op combine ctx ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    (op : 'a Binop.t) ~out u v =
  check_vector_sizes ctx u v;
  check_vector_sizes ctx out u;
  let t = combine op.Binop.f (Svector.entries u) (Svector.entries v) in
  Output.write_vector ~mask ~accum ~replace ~out ~t

let vector_add ?mask ?accum ?replace op ~out u v =
  vector_op union_entries "eWiseAdd" ?mask ?accum ?replace op ~out u v

let vector_mult ?mask ?accum ?replace op ~out u v =
  vector_op intersect_entries "eWiseMult" ?mask ?accum ?replace op ~out u v

let oriented m transposed = if transposed then Smatrix.transpose m else m

let check_matrix_shapes ctx a b =
  if Smatrix.shape a <> Smatrix.shape b then
    Error.raise_dims ~op:ctx
      ~expected:(Error.shape_str (Smatrix.nrows a) (Smatrix.ncols a))
      ~actual:(Error.shape_str (Smatrix.nrows b) (Smatrix.ncols b))

let matrix_op combine ctx ?(mask = Mask.No_mmask) ?accum ?(replace = false)
    ?(transpose_a = false) ?(transpose_b = false) (op : 'a Binop.t) ~out a b =
  let a = oriented a transpose_a and b = oriented b transpose_b in
  check_matrix_shapes ctx a b;
  check_matrix_shapes ctx out a;
  let t =
    Array.init (Smatrix.nrows out) (fun r ->
        combine op.Binop.f (Smatrix.row_entries a r) (Smatrix.row_entries b r))
  in
  Output.write_matrix ~mask ~accum ~replace ~out ~t

let matrix_add ?mask ?accum ?replace ?transpose_a ?transpose_b op ~out a b =
  matrix_op union_entries "eWiseAdd" ?mask ?accum ?replace ?transpose_a
    ?transpose_b op ~out a b

let matrix_mult ?mask ?accum ?replace ?transpose_a ?transpose_b op ~out a b =
  matrix_op intersect_entries "eWiseMult" ?mask ?accum ?replace ?transpose_a
    ?transpose_b op ~out a b
