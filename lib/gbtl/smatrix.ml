(* CSR is the canonical, always-present side.  A CSC side (the same
   entries sorted column-major — equivalently the CSR of the transpose)
   is built lazily by [ensure_csc] and cached until the next mutation;
   column-oriented consumers ([extract_col], transpose-mxv pull
   dispatch, unmasked transposed [mxm]) read it instead of rescanning
   or materializing a transpose. *)
type 'a csc = { colptr : int array; rowidx : int array; cvals : 'a array }

type 'a t = {
  dt : 'a Dtype.t;
  nrows : int;
  ncols : int;
  mutable rowptr : int array; (* length nrows + 1 *)
  mutable colidx : int array;
  mutable vals : 'a array;
  mutable csc : 'a csc option;
}

exception Dimension_mismatch = Error.Dim_mismatch
exception Index_out_of_bounds of string

let create dt nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Smatrix.create: negative shape";
  { dt; nrows; ncols; rowptr = Array.make (nrows + 1) 0; colidx = [||];
    vals = [||]; csc = None }

let dtype m = m.dt
let nrows m = m.nrows
let ncols m = m.ncols
let shape m = (m.nrows, m.ncols)
let nvals m = m.rowptr.(m.nrows)

let csc_cached m = m.csc <> None
let rep_name m = if csc_cached m then "csr+csc" else "csr"
let invalidate_csc m = m.csc <- None

(* Counting sort of the CSR entries into column-major order; rows stay
   ascending within each column, so the CSC side is exactly the CSR of
   the transpose. *)
let build_csc m =
  let n = nvals m in
  let colptr = Array.make (m.ncols + 1) 0 in
  for p = 0 to n - 1 do
    colptr.(m.colidx.(p) + 1) <- colptr.(m.colidx.(p) + 1) + 1
  done;
  for c = 1 to m.ncols do
    colptr.(c) <- colptr.(c) + colptr.(c - 1)
  done;
  let cursor = Array.copy colptr in
  let rowidx = if n = 0 then [||] else Array.make n 0 in
  let cvals = if n = 0 then [||] else Array.make n m.vals.(0) in
  for r = 0 to m.nrows - 1 do
    for p = m.rowptr.(r) to m.rowptr.(r + 1) - 1 do
      let c = m.colidx.(p) in
      let q = cursor.(c) in
      rowidx.(q) <- r;
      cvals.(q) <- m.vals.(p);
      cursor.(c) <- q + 1
    done
  done;
  { colptr; rowidx; cvals }

let get_csc m =
  match m.csc with
  | Some csc -> csc
  | None ->
    let csc = build_csc m in
    m.csc <- Some csc;
    Format_stats.record_csc_build ();
    csc

let ensure_csc m = ignore (get_csc m)
let ensure_csr (_ : 'a t) = ()

let check_bounds m r c ctx =
  if r < 0 || r >= m.nrows || c < 0 || c >= m.ncols then
    raise
      (Index_out_of_bounds
         (Printf.sprintf "%s: (%d, %d) outside %dx%d" ctx r c m.nrows m.ncols))

(* Position of column [c] in row [r]: [Ok pos] or [Error insertion_point]. *)
let find m r c =
  let lo = ref m.rowptr.(r) and hi = ref m.rowptr.(r + 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if m.colidx.(mid) < c then lo := mid + 1 else hi := mid
  done;
  if !lo < m.rowptr.(r + 1) && m.colidx.(!lo) = c then Ok !lo else Error !lo

let get m r c =
  check_bounds m r c "Smatrix.get";
  match find m r c with Ok p -> Some m.vals.(p) | Error _ -> None

let get_exn m r c =
  match get m r c with Some x -> x | None -> raise Not_found

let mem m r c =
  check_bounds m r c "Smatrix.mem";
  match find m r c with Ok _ -> true | Error _ -> false

let set m r c x =
  check_bounds m r c "Smatrix.set";
  invalidate_csc m;
  match find m r c with
  | Ok p -> m.vals.(p) <- x
  | Error p ->
    let n = nvals m in
    let colidx' = Array.make (n + 1) 0 and vals' = Array.make (n + 1) x in
    Array.blit m.colidx 0 colidx' 0 p;
    Array.blit m.vals 0 vals' 0 p;
    colidx'.(p) <- c;
    vals'.(p) <- x;
    Array.blit m.colidx p colidx' (p + 1) (n - p);
    Array.blit m.vals p vals' (p + 1) (n - p);
    m.colidx <- colidx';
    m.vals <- vals';
    for i = r + 1 to m.nrows do
      m.rowptr.(i) <- m.rowptr.(i) + 1
    done

let remove m r c =
  check_bounds m r c "Smatrix.remove";
  invalidate_csc m;
  match find m r c with
  | Error _ -> ()
  | Ok p ->
    let n = nvals m in
    Array.blit m.colidx (p + 1) m.colidx p (n - p - 1);
    Array.blit m.vals (p + 1) m.vals p (n - p - 1);
    for i = r + 1 to m.nrows do
      m.rowptr.(i) <- m.rowptr.(i) - 1
    done

let clear m =
  Array.fill m.rowptr 0 (m.nrows + 1) 0;
  m.colidx <- [||];
  m.vals <- [||];
  invalidate_csc m

let dup m =
  {
    dt = m.dt;
    nrows = m.nrows;
    ncols = m.ncols;
    rowptr = Array.copy m.rowptr;
    colidx = Array.sub m.colidx 0 (nvals m);
    vals = Array.sub m.vals 0 (nvals m);
    csc = None;
  }

let replace_contents dst src =
  if dst.nrows <> src.nrows || dst.ncols <> src.ncols then
    Error.raise_dims ~op:"Smatrix.replace_contents"
      ~expected:(Error.shape_str dst.nrows dst.ncols)
      ~actual:(Error.shape_str src.nrows src.ncols);
  dst.rowptr <- Array.copy src.rowptr;
  dst.colidx <- Array.sub src.colidx 0 (nvals src);
  dst.vals <- Array.sub src.vals 0 (nvals src);
  invalidate_csc dst

let of_coo ?dup dt nrows ncols triples =
  let m = create dt nrows ncols in
  let combine = match dup with Some op -> op.Binop.f | None -> fun _ y -> y in
  let sorted =
    List.stable_sort
      (fun (r1, c1, _) (r2, c2, _) ->
        match Int.compare r1 r2 with 0 -> Int.compare c1 c2 | n -> n)
      triples
  in
  let n_in = List.length sorted in
  let colidx = Array.make (max n_in 1) 0 in
  let vals =
    match sorted with
    | [] -> [||]
    | (_, _, x) :: _ -> Array.make n_in x
  in
  let counts = Array.make (nrows + 1) 0 in
  let k = ref 0 in
  let prev_r = ref (-1) and prev_c = ref (-1) in
  List.iter
    (fun (r, c, x) ->
      check_bounds m r c "Smatrix.of_coo";
      if r = !prev_r && c = !prev_c then
        vals.(!k - 1) <- combine vals.(!k - 1) x
      else begin
        colidx.(!k) <- c;
        vals.(!k) <- x;
        counts.(r + 1) <- counts.(r + 1) + 1;
        incr k;
        prev_r := r;
        prev_c := c
      end)
    sorted;
  let rowptr = Array.make (nrows + 1) 0 in
  for r = 1 to nrows do
    rowptr.(r) <- rowptr.(r - 1) + counts.(r)
  done;
  m.rowptr <- rowptr;
  m.colidx <- Array.sub colidx 0 !k;
  m.vals <- (if !k = 0 then [||] else Array.sub vals 0 !k);
  m

let of_dense dt rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> ncols then
        Error.raise_dims ~op:"Smatrix.of_dense"
          ~expected:(Printf.sprintf "row length %d" ncols)
          ~actual:(Printf.sprintf "row length %d" (Array.length r)))
    rows;
  let triples = ref [] in
  for r = nrows - 1 downto 0 do
    for c = ncols - 1 downto 0 do
      triples := (r, c, rows.(r).(c)) :: !triples
    done
  done;
  of_coo dt nrows ncols !triples

let of_dense_drop_zeros dt rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  let triples = ref [] in
  for r = nrows - 1 downto 0 do
    if Array.length rows.(r) <> ncols then
      Error.raise_dims ~op:"Smatrix.of_dense_drop_zeros"
        ~expected:(Printf.sprintf "row length %d" ncols)
        ~actual:(Printf.sprintf "row length %d" (Array.length rows.(r)));
    for c = ncols - 1 downto 0 do
      let x = rows.(r).(c) in
      if not (Dtype.equal_values dt x (Dtype.zero dt)) then
        triples := (r, c, x) :: !triples
    done
  done;
  of_coo dt nrows ncols !triples

let of_rows_unsafe dt ~nrows ~ncols rows =
  assert (Array.length rows = nrows);
  let total = Array.fold_left (fun acc e -> acc + Entries.length e) 0 rows in
  let rowptr = Array.make (nrows + 1) 0 in
  let colidx = Array.make (max total 1) 0 in
  let vals = ref [||] in
  let k = ref 0 in
  Array.iteri
    (fun r e ->
      rowptr.(r) <- !k;
      Entries.iter
        (fun c x ->
          if !vals = [||] && total > 0 then vals := Array.make total x;
          colidx.(!k) <- c;
          !vals.(!k) <- x;
          incr k)
        e)
    rows;
  rowptr.(nrows) <- !k;
  { dt; nrows; ncols; rowptr; colidx = Array.sub colidx 0 !k; vals = !vals;
    csc = None }

let of_csr_unsafe dt ~nrows ~ncols ~rowptr ~colidx ~values =
  assert (Array.length rowptr = nrows + 1);
  assert (rowptr.(nrows) <= Array.length colidx);
  { dt; nrows; ncols; rowptr; colidx; vals = values; csc = None }

let row_nvals m r = m.rowptr.(r + 1) - m.rowptr.(r)

let iter_row f m r =
  for p = m.rowptr.(r) to m.rowptr.(r + 1) - 1 do
    f m.colidx.(p) m.vals.(p)
  done

let fold_row f init m r =
  let acc = ref init in
  iter_row (fun c x -> acc := f !acc c x) m r;
  !acc

let row_entries m r =
  let e = Entries.create () in
  iter_row (fun c x -> Entries.push e c x) m r;
  e

let extract_row m r =
  let v = Svector.create m.dt m.ncols in
  iter_row (fun c x -> Svector.set v c x) m r;
  v

let extract_col m c =
  (* Served from the cached CSC side: one counting sort amortized over
     all column extractions instead of a binary search per row per call. *)
  let csc = get_csc m in
  let v = Svector.create m.dt m.nrows in
  for p = csc.colptr.(c) to csc.colptr.(c + 1) - 1 do
    Svector.set v csc.rowidx.(p) csc.cvals.(p)
  done;
  v

let col_nvals m c =
  let csc = get_csc m in
  csc.colptr.(c + 1) - csc.colptr.(c)

let iter_col f m c =
  let csc = get_csc m in
  for p = csc.colptr.(c) to csc.colptr.(c + 1) - 1 do
    f csc.rowidx.(p) csc.cvals.(p)
  done

let iter f m =
  for r = 0 to m.nrows - 1 do
    iter_row (fun c x -> f r c x) m r
  done

let fold f init m =
  let acc = ref init in
  iter (fun r c x -> acc := f !acc r c x) m;
  !acc

let to_coo m = List.rev (fold (fun acc r c x -> (r, c, x) :: acc) [] m)

let to_dense ~fill m =
  let d = Array.make_matrix m.nrows m.ncols fill in
  iter (fun r c x -> d.(r).(c) <- x) m;
  d

(* The CSC side of [m] is exactly the CSR of its transpose, so a
   materialized transpose is copies of the cached arrays. *)
let transpose m =
  let csc = get_csc m in
  {
    dt = m.dt;
    nrows = m.ncols;
    ncols = m.nrows;
    rowptr = Array.copy csc.colptr;
    colidx = Array.copy csc.rowidx;
    vals = Array.copy csc.cvals;
    csc = None;
  }

let unsafe_transpose_view m =
  let csc = get_csc m in
  {
    dt = m.dt;
    nrows = m.ncols;
    ncols = m.nrows;
    rowptr = csc.colptr;
    colidx = csc.rowidx;
    vals = csc.cvals;
    (* The view's CSC is the original's CSR, also shared. *)
    csc = Some { colptr = m.rowptr; rowidx = m.colidx; cvals = m.vals };
  }

let cast ~into m =
  let n = nvals m in
  let vals = Array.make (max n 1) (Dtype.zero into) in
  for p = 0 to n - 1 do
    vals.(p) <- Dtype.cast ~from:m.dt ~into m.vals.(p)
  done;
  {
    dt = into;
    nrows = m.nrows;
    ncols = m.ncols;
    rowptr = Array.copy m.rowptr;
    colidx = Array.sub m.colidx 0 n;
    vals = Array.sub vals 0 n;
    csc = None;
  }

let map m ~f =
  let out = dup m in
  for p = 0 to nvals out - 1 do
    out.vals.(p) <- f out.vals.(p)
  done;
  out

let map_inplace m ~f =
  invalidate_csc m;
  for p = 0 to nvals m - 1 do
    m.vals.(p) <- f m.vals.(p)
  done

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols && nvals a = nvals b
  &&
  let ok = ref true in
  for r = 0 to a.nrows do
    if a.rowptr.(r) <> b.rowptr.(r) then ok := false
  done;
  if !ok then
    for p = 0 to nvals a - 1 do
      if a.colidx.(p) <> b.colidx.(p)
         || not (Dtype.equal_values a.dt a.vals.(p) b.vals.(p))
      then ok := false
    done;
  !ok

let pp fmt m =
  Format.fprintf fmt "@[<hov 2>Matrix<%s>(%dx%d, nvals=%d" (Dtype.name m.dt)
    m.nrows m.ncols (nvals m);
  iter
    (fun r c x ->
      Format.fprintf fmt ",@ (%d,%d):%s" r c (Dtype.to_string m.dt x))
    m;
  Format.fprintf fmt ")@]"

let unsafe_rowptr m = m.rowptr
let unsafe_colidx m = m.colidx
let unsafe_values m = m.vals

let unsafe_colptr m = (get_csc m).colptr
let unsafe_rowidx m = (get_csc m).rowidx
let unsafe_cvals m = (get_csc m).cvals
