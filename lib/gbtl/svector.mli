(** GraphBLAS vector with two storage representations: [Sparse] — sorted
    (index, value) arrays, the original layout — and [Dense] — a full
    value array plus a validity bitmap.  Stored entries are explicit — a
    stored zero is distinct from an absent entry, per the GraphBLAS data
    model.  Outputs of operations are written in place (GBTL's
    pass-by-reference convention).

    Logical content is representation-independent: iteration always runs
    in ascending index order over stored entries, and {!equal} compares
    entries, not layouts.  Conversions are explicit ({!densify} /
    {!sparsify}); bulk writes ({!replace_contents}, {!of_dense}, ...)
    auto-switch on fill ratio (dense at ≥ 1/4 fill for sizes ≥ 32, back
    to sparse below 1/16) when {!Format_stats.enabled} is set. *)

type 'a t

exception Dimension_mismatch of string
(** Rebinding of {!Error.Dim_mismatch}: every dimension conformance
    failure across gbtl raises this one exception. *)

exception Index_out_of_bounds of string

val create : 'a Dtype.t -> int -> 'a t
(** Empty vector of the given logical size (sparse representation). *)

val dtype : 'a t -> 'a Dtype.t
val size : 'a t -> int
val nvals : 'a t -> int

val is_dense : 'a t -> bool
val rep_name : 'a t -> string
(** ["sparse"] or ["dense"] — the format component kernels put in their
    {!Jit.Kernel_sig} cache keys. *)

val densify : 'a t -> unit
(** Switch to the dense representation (no-op if already dense);
    O(size). *)

val sparsify : 'a t -> unit
(** Switch to the sorted-pairs representation (no-op if already sparse);
    O(size). *)

val of_coo : ?dup:'a Binop.t -> 'a Dtype.t -> int -> (int * 'a) list -> 'a t
(** Build from coordinate data; duplicates are combined with [dup]
    (default: last one wins, matching GrB_SECOND).
    @raise Index_out_of_bounds *)

val of_dense : 'a Dtype.t -> 'a array -> 'a t
(** Stores every element, including zeros (PyGB's copy-from-list
    constructor). *)

val of_dense_drop_zeros : 'a Dtype.t -> 'a array -> 'a t
(** Stores only elements that are not the dtype's zero — the adjacency
    convention used by the graph converters. *)

val get : 'a t -> int -> 'a option
val get_exn : 'a t -> int -> 'a
(** @raise Not_found *)

val mem : 'a t -> int -> bool
val set : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit
val clear : 'a t -> unit
val dup : 'a t -> 'a t
(** Same entries, same representation. *)

val replace_contents : 'a t -> 'a Entries.t -> unit
(** Overwrite the stored entries wholesale (used by the output-write
    step); indices must lie within [size].  May auto-densify. *)

val entries : 'a t -> 'a Entries.t
(** Snapshot of the stored entries. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> int -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_alist : 'a t -> (int * 'a) list
val to_dense : fill:'a -> 'a t -> 'a array
val cast : into:'b Dtype.t -> 'a t -> 'b t
val map : 'a t -> f:('a -> 'a) -> 'a t
val map_inplace : 'a t -> f:('a -> 'a) -> unit

val to_bool_dense : 'a t -> bool array
(** Value-coerced truthiness per index (absent = [false]) — the mask
    interpretation of a vector. *)

val equal : 'a t -> 'a t -> bool
(** Same size, same stored positions, same values — independent of the
    representation on either side. *)

val pp : Format.formatter -> 'a t -> unit

(** {2 Direct access for kernels}

    Live internal buffers that must not be mutated by callers.  The
    sparse accessors sparsify first (only the first [nvals] cells are
    meaningful); {!unsafe_dense} densifies first. *)

val unsafe_indices : 'a t -> int array
val unsafe_values : 'a t -> 'a array

val unsafe_dense : 'a t -> 'a array * bool array
(** [(values, validity)], both of length [size] (length 1 for size-0
    vectors). *)

val of_dense_unsafe : 'a Dtype.t -> vals:'a array -> valid:bool array -> 'a t
(** Adopt well-formed dense arrays without copying (kernel results);
    [nvals] is counted from [valid]. @raise Dimension_mismatch *)

val replace_dense_unsafe : 'a t -> vals:'a array -> valid:bool array -> unit
(** Adopt dense arrays (length [size]) as the vector's new contents.
    @raise Dimension_mismatch *)
