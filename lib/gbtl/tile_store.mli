(** Crash-safe on-disk blob store — the persistence layer under the
    tiled matrix ({!Tmatrix}) and the checkpointed-iteration driver.

    Same discipline as the hardened JIT disk cache (PR 4): every write
    is atomic (temp file + rename), every blob carries an MD5 [.sum]
    sidecar that is verified before the payload is ever decoded, and a
    blob that fails verification is quarantined ([.bad]) rather than
    returned — the caller rebuilds from its authoritative source.
    Blobs are [Marshal]-encoded by callers; the checksum gate is what
    makes that safe: unverified bytes never reach [Marshal.from_string].

    Write failures never escape as exceptions: a store that cannot be
    written degrades the tile cache to keeping pages resident (counted
    in {!Tile_stats}), it does not crash the computation.

    Fault injection: [tile.write.enospc] fails a write as a full
    device, [tile.read.corrupt] garbles the on-disk blob before
    verification looks at it (so quarantine-and-rebuild runs against
    real corruption), and [tile.io.exn] raises {!Fault.Injected} from
    the middle of a read or write — callers contain it. *)

type t

val root_dir : unit -> string
(** [$OGB_TILE_DIR], else [$XDG_RUNTIME_DIR/ogb-tiles-<uid>], else
    [<tmpdir>/ogb-tiles-<uid>]; stores opened with {!open_store} live
    in subdirectories of this root, so one scan ({!scan_root}) gives
    the doctor the whole on-disk footprint. *)

val open_store : ?dir:string -> string -> t
(** [open_store name] — create/open [dir/name] ([dir] defaults to
    {!root_dir}; created as needed 0700, EEXIST-tolerant).  When the
    root is the ambient default (neither [?dir] nor [OGB_TILE_DIR]
    chose it), it must be a real directory owned by the current uid —
    a pre-created root belonging to someone else raises [Failure]
    instead of trusting planted blob/sidecar pairs (the checksum
    proves integrity, not authenticity). *)

val dir : t -> string

val put : t -> key:string -> string -> (unit, string) result
(** Atomic write of [blob] and its checksum sidecar.  [Error] on any
    I/O failure (counted as a write failure, never raised) — except the
    injected [tile.io.exn], which raises {!Fault.Injected} to exercise
    caller containment. *)

val get : t -> key:string -> [ `Ok of string | `Missing | `Corrupt ]
(** Read and verify.  A checksum mismatch (or a blob with no sidecar)
    quarantines the blob as [<key>.blob.bad] and returns [`Corrupt].
    Raises {!Fault.Injected} only under [tile.io.exn]. *)

val mem : t -> key:string -> bool
val delete : t -> key:string -> unit

val keys : t -> string list
(** Keys with a blob present (sorted). *)

val clear : t -> unit
(** Remove blobs, sidecars and quarantined artifacts of this store. *)

type footprint = { blobs : int; bytes : int; quarantined : int }

val scan : t -> footprint
val scan_root : unit -> footprint
(** Aggregate footprint over every store under {!root_dir} — the
    doctor's "bytes on disk / quarantined tiles" line. *)
