(* Counters for the out-of-core tile layer.  Same discipline as
   Format_stats: atomics for monotone tallies, a fixed-order [counters]
   list for the health report. *)

let loads = Atomic.make 0
let stores = Atomic.make 0
let evictions = Atomic.make 0
let write_failures = Atomic.make 0
let quarantines = Atomic.make 0
let rebuilds = Atomic.make 0
let ckpt_saves = Atomic.make 0
let ckpt_resumes = Atomic.make 0
let ckpt_generation = Atomic.make 0
let delta_plans = Atomic.make 0
let delta_rejections = Atomic.make 0
let resident_tiles = Atomic.make 0
let resident_bytes = Atomic.make 0

let record_load () = Atomic.incr loads
let record_store () = Atomic.incr stores
let record_eviction () = Atomic.incr evictions
let record_write_failure () = Atomic.incr write_failures
let record_quarantine () = Atomic.incr quarantines
let record_rebuild () = Atomic.incr rebuilds
let record_ckpt_save () = Atomic.incr ckpt_saves
let record_ckpt_resume () = Atomic.incr ckpt_resumes
let set_ckpt_generation g = Atomic.set ckpt_generation g
let record_delta_plan () = Atomic.incr delta_plans
let record_delta_rejection () = Atomic.incr delta_rejections

let set_resident ~tiles ~bytes =
  Atomic.set resident_tiles tiles;
  Atomic.set resident_bytes bytes

let add_resident ~tiles ~bytes =
  ignore (Atomic.fetch_and_add resident_tiles tiles);
  ignore (Atomic.fetch_and_add resident_bytes bytes)

let get_evictions () = Atomic.get evictions
let get_resident_tiles () = Atomic.get resident_tiles

let counters () =
  [ ("tile_loads", Atomic.get loads);
    ("tile_stores", Atomic.get stores);
    ("tile_evictions", Atomic.get evictions);
    ("tile_write_failures", Atomic.get write_failures);
    ("tile_quarantines", Atomic.get quarantines);
    ("tile_rebuilds", Atomic.get rebuilds);
    ("ckpt_saves", Atomic.get ckpt_saves);
    ("ckpt_resumes", Atomic.get ckpt_resumes);
    ("ckpt_generation", Atomic.get ckpt_generation);
    ("delta_plans", Atomic.get delta_plans);
    ("delta_rejections", Atomic.get delta_rejections);
    ("resident_tiles", Atomic.get resident_tiles);
    ("resident_bytes", Atomic.get resident_bytes) ]

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ loads; stores; evictions; write_failures; quarantines; rebuilds;
      ckpt_saves; ckpt_resumes; ckpt_generation; delta_plans;
      delta_rejections; resident_tiles; resident_bytes ]
