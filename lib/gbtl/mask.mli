(** Write masks.

    A mask is another container whose stored values, coerced to booleans,
    select which output positions an operation may write (paper §II).  The
    complement flag inverts the selection, and absence of a mask allows
    every position. *)

(** Vector masks come in two layouts: a dense boolean array (O(1)
    membership, O(size) to build) and a sorted array of truthy indices
    (O(nvals) to build, O(log nvals) membership).  {!vmask} picks the
    sparse layout for low-fill vectors of at least 64 elements when
    {!Format_stats.enabled} is set — the frontier-mask case in BFS —
    and the dense layout otherwise. *)
type vmask =
  | No_vmask
  | Vmask of { dense : bool array; complemented : bool }
  | Vmask_sparse of { size : int; idx : int array; complemented : bool }

(** Matrix masks stay sparse (a boolean CSR of coerced values). *)
type mmask =
  | No_mmask
  | Mmask of { m : bool Smatrix.t; complemented : bool }

val vmask : ?complemented:bool -> 'a Svector.t -> vmask
(** Coerce a vector of any dtype into a mask. *)

val mmask : ?complemented:bool -> 'a Smatrix.t -> mmask

val v_allowed : vmask -> int -> bool

val v_check_size : vmask -> int -> unit
(** @raise Svector.Dimension_mismatch if the mask length differs. *)

val m_check_shape : mmask -> int -> int -> unit

val m_row_allowed : mmask -> int -> (int -> bool)
(** Membership predicate for one row (binary search in the mask row). *)

val m_row_allowed_list : mmask -> int -> int array option
(** For a non-complemented mask: the sorted list of allowed columns in the
    row — the structural pruning set masked [mxm] iterates over.  [None]
    when the mask does not restrict structure this way (absent or
    complemented), in which case callers fall back to {!m_row_allowed}. *)
