(** Counters for the out-of-core tile layer ({!Tile_store}, {!Tmatrix})
    and the checkpointed-iteration driver.  Lives in gbtl because the
    tiled containers record their own traffic; the JIT layer re-exports
    the counters next to its dispatch statistics, and [ogb doctor] /
    the serve [health] endpoint surface them.

    Counters are atomics: tiles are loaded and evicted from scheduler
    worker domains concurrently, and we only need monotone tallies. *)

val record_load : unit -> unit
(** A tile materialized from the on-disk store. *)

val record_store : unit -> unit
(** A tile (or checkpoint) blob written to the store. *)

val record_eviction : unit -> unit
(** A resident tile dropped to stay inside the memory budget. *)

val record_write_failure : unit -> unit
(** A store write that failed (ENOSPC, EACCES, injected I/O fault) and
    was contained. *)

val record_quarantine : unit -> unit
(** A corrupt blob quarantined ([.bad]) after checksum mismatch. *)

val record_rebuild : unit -> unit
(** A quarantined/missing tile rebuilt from its authoritative source. *)

val record_ckpt_save : unit -> unit
val record_ckpt_resume : unit -> unit
(** Checkpointed-iteration bookkeeping: generations written, and runs
    that resumed from a saved generation instead of iteration 0. *)

val set_ckpt_generation : int -> unit
(** Gauge: iteration index of the newest good checkpoint written (or
    resumed from) by the checkpointed driver. *)

val record_delta_plan : unit -> unit
val record_delta_rejection : unit -> unit
(** Incremental-recompute bookkeeping: delta plans certified and run,
    and plans the certifier refused (caller falls back to a full
    recompute). *)

val set_resident : tiles:int -> bytes:int -> unit
(** Gauge: tiles currently resident across all live tiled matrices and
    their estimated footprint (updated by the {!Tmatrix} cache). *)

val add_resident : tiles:int -> bytes:int -> unit
(** Gauge adjustment (may be negative). *)

val get_evictions : unit -> int
val get_resident_tiles : unit -> int

val counters : unit -> (string * int) list
(** All counters as [(name, count)], fixed order: tile_loads,
    tile_stores, tile_evictions, tile_write_failures, tile_quarantines,
    tile_rebuilds, ckpt_saves, ckpt_resumes, ckpt_generation,
    delta_plans, delta_rejections, resident_tiles, resident_bytes. *)

val reset : unit -> unit
