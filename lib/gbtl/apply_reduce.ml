let apply_vector ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    (f : 'a Unaryop.t) ~out u =
  if Svector.size out <> Svector.size u then
    Error.raise_dims ~op:"apply"
      ~expected:(Printf.sprintf "output size %d" (Svector.size u))
      ~actual:(Error.size_str (Svector.size out));
  let t = Entries.create () in
  Svector.iter (fun i x -> Entries.push t i (f.Unaryop.f x)) u;
  Output.write_vector ~mask ~accum ~replace ~out ~t

let apply_matrix ?(mask = Mask.No_mmask) ?accum ?(replace = false)
    ?(transpose = false) (f : 'a Unaryop.t) ~out a =
  let a = if transpose then Smatrix.transpose a else a in
  if Smatrix.shape out <> Smatrix.shape a then
    Error.raise_dims ~op:"apply"
      ~expected:
        (Printf.sprintf "output %s"
           (Error.shape_str (Smatrix.nrows a) (Smatrix.ncols a)))
      ~actual:(Error.shape_str (Smatrix.nrows out) (Smatrix.ncols out));
  let t =
    Array.init (Smatrix.nrows a) (fun r ->
        let e = Entries.create () in
        Smatrix.iter_row (fun c x -> Entries.push e c (f.Unaryop.f x)) a r;
        e)
  in
  Output.write_matrix ~mask ~accum ~replace ~out ~t

let reduce_rows ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    ?(transpose = false) (m : 'a Monoid.t) ~out a =
  let a = if transpose then Smatrix.transpose a else a in
  if Svector.size out <> Smatrix.nrows a then
    Error.raise_dims ~op:"reduce"
      ~expected:(Printf.sprintf "output size %d" (Smatrix.nrows a))
      ~actual:(Error.size_str (Svector.size out));
  let t = Entries.create () in
  for r = 0 to Smatrix.nrows a - 1 do
    if Smatrix.row_nvals a r > 0 then begin
      let acc = ref m.Monoid.identity in
      Smatrix.iter_row (fun _ x -> acc := m.Monoid.op.Binop.f !acc x) a r;
      Entries.push t r !acc
    end
  done;
  Output.write_vector ~mask ~accum ~replace ~out ~t

let finish_scalar ?accum ?init (m : 'a Monoid.t) ~nvals total =
  let reduced = if nvals = 0 then m.Monoid.identity else total in
  match accum, init with
  | Some (op : 'a Binop.t), Some s -> op.Binop.f s reduced
  | Some _, None | None, (Some _ | None) -> reduced

let reduce_vector_scalar ?accum ?init (m : 'a Monoid.t) u =
  let total =
    Svector.fold (fun acc _ x -> m.Monoid.op.Binop.f acc x) m.Monoid.identity u
  in
  finish_scalar ?accum ?init m ~nvals:(Svector.nvals u) total

let reduce_matrix_scalar ?accum ?init (m : 'a Monoid.t) a =
  let total =
    Smatrix.fold (fun acc _ _ x -> m.Monoid.op.Binop.f acc x) m.Monoid.identity a
  in
  finish_scalar ?accum ?init m ~nvals:(Smatrix.nvals a) total
