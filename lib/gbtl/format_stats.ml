(* Global switch and counters for the format-polymorphic storage layer
   (CSR/CSC matrices, sparse/dense vectors).  Lives in gbtl because the
   containers themselves record conversions; the JIT layer re-exports the
   counters next to its dispatch statistics.

   Counters are atomics: scheduler worker domains convert formats while
   dispatching kernels concurrently, and we only need monotone tallies,
   not cross-counter consistency. *)

let enabled_flag = ref true

let () =
  match Sys.getenv_opt "OGB_FORMATS" with
  | Some ("0" | "off" | "false") -> enabled_flag := false
  | _ -> ()

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let with_enabled b f =
  let saved = !enabled_flag in
  enabled_flag := b;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

let csc_builds = Atomic.make 0
let densify_count = Atomic.make 0
let sparsify_count = Atomic.make 0
let auto_densify = Atomic.make 0
let auto_sparsify = Atomic.make 0
let pull_steps = Atomic.make 0
let push_steps = Atomic.make 0
let sparse_masks = Atomic.make 0

let bump c = Atomic.incr c

let record_csc_build () = bump csc_builds
let record_densify ~auto =
  bump densify_count;
  if auto then bump auto_densify
let record_sparsify ~auto =
  bump sparsify_count;
  if auto then bump auto_sparsify
let record_pull () = bump pull_steps
let record_push () = bump push_steps
let record_sparse_mask () = bump sparse_masks

let get_csc_builds () = Atomic.get csc_builds

let counters () =
  [ ("csc_builds", Atomic.get csc_builds);
    ("densify", Atomic.get densify_count);
    ("sparsify", Atomic.get sparsify_count);
    ("auto_densify", Atomic.get auto_densify);
    ("auto_sparsify", Atomic.get auto_sparsify);
    ("pull_steps", Atomic.get pull_steps);
    ("push_steps", Atomic.get push_steps);
    ("sparse_masks", Atomic.get sparse_masks) ]

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ csc_builds; densify_count; sparsify_count; auto_densify; auto_sparsify;
      pull_steps; push_steps; sparse_masks ]
