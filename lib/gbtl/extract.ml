let matrix ?(mask = Mask.No_mmask) ?accum ?(replace = false)
    ?(transpose = false) ~out a rows cols =
  let a = if transpose then Smatrix.transpose a else a in
  let ri = Index_set.resolve rows (Smatrix.nrows a) in
  let ci = Index_set.resolve cols (Smatrix.ncols a) in
  if Smatrix.shape out <> (Array.length ri, Array.length ci) then
    Error.raise_dims ~op:"extract"
      ~expected:
        (Printf.sprintf "output %s"
           (Error.shape_str (Array.length ri) (Array.length ci)))
      ~actual:(Error.shape_str (Smatrix.nrows out) (Smatrix.ncols out));
  let t =
    Array.map
      (fun src_r ->
        let e = Entries.create () in
        Array.iteri
          (fun out_c src_c ->
            match Smatrix.get a src_r src_c with
            | Some x -> Entries.push e out_c x
            | None -> ())
          ci;
        e)
      ri
  in
  Output.write_matrix ~mask ~accum ~replace ~out ~t

let column ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    ?(transpose = false) ~out a rows j =
  let a = if transpose then Smatrix.transpose a else a in
  let ri = Index_set.resolve rows (Smatrix.nrows a) in
  if j < 0 || j >= Smatrix.ncols a then
    raise
      (Index_set.Invalid_index
         (Printf.sprintf "extract column %d outside [0, %d)" j (Smatrix.ncols a)));
  if Svector.size out <> Array.length ri then
    Error.raise_dims ~op:"extract"
      ~expected:(Printf.sprintf "output size %d" (Array.length ri))
      ~actual:(Error.size_str (Svector.size out));
  let t = Entries.create () in
  Array.iteri
    (fun out_i src_r ->
      match Smatrix.get a src_r j with
      | Some x -> Entries.push t out_i x
      | None -> ())
    ri;
  Output.write_vector ~mask ~accum ~replace ~out ~t

let vector ?(mask = Mask.No_vmask) ?accum ?(replace = false) ~out u idx =
  let ii = Index_set.resolve idx (Svector.size u) in
  if Svector.size out <> Array.length ii then
    Error.raise_dims ~op:"extract"
      ~expected:(Printf.sprintf "output size %d" (Array.length ii))
      ~actual:(Error.size_str (Svector.size out));
  let t = Entries.create () in
  Array.iteri
    (fun out_i src_i ->
      match Svector.get u src_i with
      | Some x -> Entries.push t out_i x
      | None -> ())
    ii;
  Output.write_vector ~mask ~accum ~replace ~out ~t
