(** Blocked/tiled sparse matrix: a [brows × bcols] grid of CSR tiles
    ({!Smatrix.t}) behind the same access idioms as the in-memory
    containers, whose tiles live in a bounded in-memory cache backed by
    a crash-safe on-disk {!Tile_store} — the out-of-core physical
    layout behind the format-polymorphism seam (PR 2): kernels that
    stream tiles put the tile shape in their JIT cache keys
    ({!format_tag}) exactly as CSR/CSC landed there.

    Residency: a tile is materialized on first touch (memory cache →
    verified store blob → rebuild-from-source), and the least recently
    used unpinned tiles are evicted (dirty ones written back first)
    whenever the estimated resident footprint exceeds the byte budget
    ([OGB_MEM_BUDGET], or [~budget]).  A corrupt store blob is
    quarantined and the tile rebuilt from the matrix's authoritative
    source (the original file for {!of_mm_file}) with any edge-batch
    edits replayed on top, so streamed execution stays bit-identical to
    the in-memory path even across injected corruption.

    Mutation: {!update_edges} applies an edge batch, invalidating and
    marking dirty only the touched tiles — the physical half of the
    incremental-recompute layer. *)

type 'a t

val create :
  ?dir:string -> ?tile:int * int -> ?budget:int ->
  'a Dtype.t -> int -> int -> 'a t
(** Empty matrix.  [tile] defaults to [OGB_TILE_ROWS]/[OGB_TILE_COLS]
    (1024 each); [budget] in bytes defaults to [OGB_MEM_BUDGET]
    (accepts [K]/[M]/[G] suffixes; 0 = unlimited).  The matrix starts
    empty, so the per-tile edit journal is its rebuild authority: a
    quarantined or lost tile is reconstructed by replaying the journal
    onto an empty tile. *)

val of_smatrix :
  ?dir:string -> ?tile:int * int -> ?budget:int -> 'a Smatrix.t -> 'a t
(** Tile an in-memory matrix.  The source matrix is retained as the
    rebuild authority for quarantined tiles (the genuinely out-of-core
    construction is {!of_mm_file}, whose authority is the file). *)

val of_mm_file :
  ?dir:string -> ?tile:int * int -> ?budget:int ->
  'a Dtype.t -> string -> ('a t, Error.t) result
(** Ingest a Matrix Market file through the tiled path.  Rebuilding a
    quarantined tile re-reads the file and replays any edge-batch edits
    applied since. *)

val dtype : 'a t -> 'a Dtype.t
val nrows : _ t -> int
val ncols : _ t -> int
val shape : _ t -> int * int
val nvals : _ t -> int

val tile_shape : _ t -> int * int
val grid : _ t -> int * int
(** Block-row and block-column counts. *)

val format_tag : _ t -> string
(** ["512x512"] — the tile-shape component tiled kernels put in their
    {!Jit.Kernel_sig} cache keys. *)

val budget : _ t -> int
val resident_tiles : _ t -> int
val resident_bytes : _ t -> int

val with_tile : 'a t -> int -> int -> ('a Smatrix.t -> 'b) -> 'b
(** [with_tile t bi bj f] — materialize tile [(bi, bj)] (cache → store
    → rebuild), pin it for the duration of [f], then re-enforce the
    budget.  The tile must be treated as read-only; mutation goes
    through {!update_edges}.  Not reentrant. *)

val tile_nvals : _ t -> int -> int -> int
(** Entry count of a tile without materializing it. *)

val update_edges : 'a t -> (int * int * 'a option) list -> int
(** Apply an edge batch ([Some v] upserts, [None] deletes), invalidating
    only the touched tiles; returns how many tiles were invalidated.
    @raise Smatrix.Index_out_of_bounds on an out-of-range endpoint. *)

val flush : 'a t -> unit
(** Write every dirty resident tile back to the store (checkpoint the
    matrix itself).  Write failures are contained and counted. *)

val to_smatrix : 'a t -> 'a Smatrix.t
(** Materialize the whole logical matrix (tests and small extracts). *)

val get : 'a t -> int -> int -> 'a option

val destroy : _ t -> unit
(** Drop the on-disk store contents (the matrix value itself remains
    usable only for metadata queries afterwards). *)
