(** Matrix Market (coordinate) reader/writer — the file format of the
    paper's Fig. 11 container-lifecycle experiment.

    Supported: [matrix coordinate real|integer|pattern
    general|symmetric|skew-symmetric].  Symmetric inputs are expanded to
    both triangles on read.  One-based indices per the format.

    Malformed input is data, not a programming error: the [_result]
    entry points reject bad banners, non-numeric / out-of-range /
    overflowing indices, bad value tokens, and truncated files with a
    located {!Error.t} ([file:line: what]) instead of letting a raw
    exception escape the parser.  {!read}/{!read_coo} are thin wrappers
    that raise {!Parse_error} with the same located message, kept for
    source compatibility. *)

exception Parse_error of string

type field = Real | Integer | Pattern
type symmetry = General | Symmetric | Skew_symmetric

type header = {
  field : field;
  symmetry : symmetry;
  nrows : int;
  ncols : int;
  nnz : int;  (** entry count as declared (before symmetry expansion) *)
}

val read_header : in_channel -> header
(** Consumes the banner, comments and size line. @raise Parse_error *)

val read_coo_result :
  'a Dtype.t -> string -> (header * (int * int * 'a) list, Error.t) result
(** Parse a file down to the (symmetry-expanded, zero-based) coordinate
    list — the DSL's "load into interpreter lists first" path measures
    this stage separately.  Every malformation comes back as a located
    [Error]: unreadable file, bad banner / size line, an entry line with
    the wrong arity, an index that is not a number / overflows native
    int / lies outside the declared shape, a bad value token, more
    entries than declared, or a truncated file (fewer entries than
    declared). *)

val read_result : 'a Dtype.t -> string -> ('a Smatrix.t, Error.t) result
(** {!read_coo_result} assembled into a matrix of the given dtype
    (values cast from the file's field type; [Pattern] entries become
    the dtype's one). *)

val read : 'a Dtype.t -> string -> 'a Smatrix.t
(** @raise Parse_error | Sys_error *)

val read_coo : 'a Dtype.t -> string -> header * (int * int * 'a) list
(** @raise Parse_error | Sys_error *)

val write : ?comment:string -> 'a Smatrix.t -> string -> unit
(** Writes [matrix coordinate real general] (or [integer] for integral
    dtypes). *)
