type vmask =
  | No_vmask
  | Vmask of { dense : bool array; complemented : bool }
  | Vmask_sparse of { size : int; idx : int array; complemented : bool }

type mmask =
  | No_mmask
  | Mmask of { m : bool Smatrix.t; complemented : bool }

(* Sorted indices of the truthy entries — O(nvals) to build, vs O(size)
   for the dense boolean array. *)
let sparse_of_vector v =
  let dt = Svector.dtype v in
  let idx = ref [] and k = ref 0 in
  Svector.iter
    (fun i x ->
      if Dtype.to_bool dt x then begin
        idx := i :: !idx;
        incr k
      end)
    v;
  let arr = Array.make (max !k 1) 0 in
  List.iteri (fun j i -> arr.(!k - 1 - j) <- i) !idx;
  Array.sub arr 0 !k

let vmask ?(complemented = false) v =
  (* A sparse mask only pays off when membership tests stay cheap and the
     build avoids touching every position; low fill is the common case
     for algorithm frontiers (BFS's ¬visited write masks). *)
  if
    Format_stats.enabled ()
    && Svector.size v >= 64
    && 8 * Svector.nvals v < Svector.size v
  then begin
    Format_stats.record_sparse_mask ();
    Vmask_sparse
      { size = Svector.size v; idx = sparse_of_vector v; complemented }
  end
  else Vmask { dense = Svector.to_bool_dense v; complemented }

let coerce_bool_matrix (type a) (m : a Smatrix.t) : bool Smatrix.t =
  let dt = Smatrix.dtype m in
  match Dtype.equal_witness dt Dtype.Bool with
  | Some Dtype.Equal -> m
  | None -> Smatrix.cast ~into:Dtype.Bool m

let mmask ?(complemented = false) m =
  Mmask { m = coerce_bool_matrix m; complemented }

let mem_sorted idx i =
  let lo = ref 0 and hi = ref (Array.length idx) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if idx.(mid) < i then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length idx && idx.(!lo) = i

let v_allowed mask i =
  match mask with
  | No_vmask -> true
  | Vmask { dense; complemented } -> dense.(i) <> complemented
  | Vmask_sparse { idx; complemented; _ } -> mem_sorted idx i <> complemented

let v_check_size mask n =
  let fail len =
    Error.raise_dims ~op:"mask"
      ~expected:(Printf.sprintf "vector size %d" n)
      ~actual:(Error.size_str len)
  in
  match mask with
  | No_vmask -> ()
  | Vmask { dense; _ } -> if Array.length dense <> n then fail (Array.length dense)
  | Vmask_sparse { size; _ } -> if size <> n then fail size

let m_check_shape mask nrows ncols =
  match mask with
  | No_mmask -> ()
  | Mmask { m; _ } ->
    if Smatrix.nrows m <> nrows || Smatrix.ncols m <> ncols then
      Error.raise_dims ~op:"mask"
        ~expected:(Printf.sprintf "output %s" (Error.shape_str nrows ncols))
        ~actual:(Error.shape_str (Smatrix.nrows m) (Smatrix.ncols m))

let m_row_allowed mask r =
  match mask with
  | No_mmask -> fun _ -> true
  | Mmask { m; complemented } ->
    fun c ->
      let stored_true =
        match Smatrix.get m r c with Some b -> b | None -> false
      in
      stored_true <> complemented

let m_row_allowed_list mask r =
  match mask with
  | No_mmask -> None
  | Mmask { complemented = true; _ } -> None
  | Mmask { m; complemented = false } ->
    let cols = ref [] in
    Smatrix.iter_row (fun c b -> if b then cols := c :: !cols) m r;
    Some (Array.of_list (List.rev !cols))
