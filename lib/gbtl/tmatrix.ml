(* Blocked sparse matrix: a grid of CSR tiles behind a bounded LRU cache
   backed by the crash-safe Tile_store.  Entry counts (and the grid
   geometry) are plain in-memory metadata that survive eviction; the
   tile payloads move between the cache and the store. *)

type 'a slot = {
  mutable m : 'a Smatrix.t option;  (* resident payload *)
  mutable dirty : bool;  (* resident copy newer than the store blob *)
  mutable stamp : int;  (* LRU clock at last touch *)
  mutable bytes : int;  (* estimated resident footprint *)
  mutable nv : int;  (* authoritative entry count, survives eviction *)
}

type 'a t = {
  dt : 'a Dtype.t;
  nrows : int;
  ncols : int;
  trows : int;
  tcols : int;
  brows : int;
  bcols : int;
  budget : int;  (* bytes; 0 = unlimited *)
  store : Tile_store.t;
  slots : 'a slot array array;
  mutable clock : int;
  mutable res_tiles : int;
  mutable res_bytes : int;
  mutable nv_total : int;
  mutable pinned : (int * int) option;
  (* Source authority: local (tile-relative) triples for a block, used to
     rebuild quarantined/lost tiles.  Edits applied since construction
     are kept per tile (oldest first) and replayed after a rebuild so a
     rebuild never resurrects stale data. *)
  mutable rebuild : (int -> int -> (int * int * 'a) list) option;
  overlays : (int * int, (int * int * 'a option) list) Hashtbl.t;
}

let parse_bytes s =
  let s = String.trim (String.lowercase_ascii s) in
  let n = String.length s in
  if n = 0 then None
  else
    let mult, digits =
      match s.[n - 1] with
      | 'k' -> (1024, String.sub s 0 (n - 1))
      | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v >= 0 -> Some (v * mult)
    | _ -> None

let env_dim name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v > 0 -> v
    | _ -> default)
  | None -> default

let default_tile () = (env_dim "OGB_TILE_ROWS" 1024, env_dim "OGB_TILE_COLS" 1024)

let default_budget () =
  match Sys.getenv_opt "OGB_MEM_BUDGET" with
  | Some s -> ( match parse_bytes s with Some v -> v | None -> 0)
  | None -> 0

let store_ctr = Atomic.make 0

let fresh_store dir =
  let name =
    Printf.sprintf "m%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add store_ctr 1)
  in
  Tile_store.open_store ?dir name

let cdiv a b = (a + b - 1) / b

let make ?dir ?tile ?budget dt nrows ncols =
  let trows, tcols = match tile with Some t -> t | None -> default_tile () in
  let trows = max 1 (min trows (max 1 nrows))
  and tcols = max 1 (min tcols (max 1 ncols)) in
  let brows = max 1 (cdiv (max 1 nrows) trows)
  and bcols = max 1 (cdiv (max 1 ncols) tcols) in
  let budget = match budget with Some b -> b | None -> default_budget () in
  { dt; nrows; ncols; trows; tcols; brows; bcols; budget;
    store = fresh_store dir;
    slots =
      Array.init brows (fun _ ->
          Array.init bcols (fun _ ->
              { m = None; dirty = false; stamp = 0; bytes = 0; nv = 0 }));
    clock = 0; res_tiles = 0; res_bytes = 0; nv_total = 0; pinned = None;
    rebuild = None; overlays = Hashtbl.create 8 }

let create ?dir ?tile ?budget dt nrows ncols =
  make ?dir ?tile ?budget dt nrows ncols

let dtype t = t.dt
let nrows t = t.nrows
let ncols t = t.ncols
let shape t = (t.nrows, t.ncols)
let nvals t = t.nv_total
let tile_shape t = (t.trows, t.tcols)
let grid t = (t.brows, t.bcols)
let format_tag t = Printf.sprintf "%dx%d" t.trows t.tcols
let budget t = t.budget
let resident_tiles t = t.res_tiles
let resident_bytes t = t.res_bytes
let tile_nvals t bi bj = t.slots.(bi).(bj).nv

let key bi bj = Printf.sprintf "t%d_%d" bi bj
let tile_rows t bi = min t.trows (t.nrows - (bi * t.trows))
let tile_cols t bj = min t.tcols (t.ncols - (bj * t.tcols))

(* rowptr + colidx + values + headers, in words-ish; an estimate is all
   the budget needs. *)
let est_bytes rows nv = 96 + (8 * (rows + 1)) + (16 * nv)

let encode m =
  Marshal.to_string (Smatrix.nrows m, Smatrix.ncols m, Smatrix.to_coo m) []

let decode (type a) (dt : a Dtype.t) blob : a Smatrix.t =
  let r, c, (coo : (int * int * a) list) = Marshal.from_string blob 0 in
  Smatrix.of_coo dt r c coo

let touch t slot =
  t.clock <- t.clock + 1;
  slot.stamp <- t.clock

let note_resident t slot m =
  slot.m <- Some m;
  slot.bytes <- est_bytes (Smatrix.nrows m) (Smatrix.nvals m);
  t.res_tiles <- t.res_tiles + 1;
  t.res_bytes <- t.res_bytes + slot.bytes;
  Tile_stats.add_resident ~tiles:1 ~bytes:slot.bytes;
  touch t slot

let drop_resident t slot =
  slot.m <- None;
  t.res_tiles <- t.res_tiles - 1;
  t.res_bytes <- t.res_bytes - slot.bytes;
  Tile_stats.add_resident ~tiles:(-1) ~bytes:(-slot.bytes);
  slot.bytes <- 0

(* Write a resident tile back to the store.  Failures (including the
   injected tile.io.exn) are contained: the tile just stays resident and
   dirty, counted as a write failure. *)
let writeback t bi bj slot m =
  if Fault.fire "tile.evict.slow" then Unix.sleepf 0.02;
  match Tile_store.put t.store ~key:(key bi bj) (encode m) with
  | Ok () ->
    slot.dirty <- false;
    true
  | Error _ -> false
  | exception Fault.Injected _ ->
    Tile_stats.record_write_failure ();
    false

let enforce_budget t =
  if t.budget > 0 && t.res_bytes > t.budget then begin
    let stuck = Hashtbl.create 4 in
    let continue = ref true in
    while !continue && t.res_bytes > t.budget do
      let best = ref None in
      for bi = 0 to t.brows - 1 do
        for bj = 0 to t.bcols - 1 do
          let slot = t.slots.(bi).(bj) in
          match slot.m with
          | Some _
            when t.pinned <> Some (bi, bj)
                 && not (Hashtbl.mem stuck (bi, bj)) -> (
            match !best with
            | Some (_, _, s) when s.stamp <= slot.stamp -> ()
            | _ -> best := Some (bi, bj, slot))
          | _ -> ()
        done
      done;
      match !best with
      | None -> continue := false
      | Some (bi, bj, slot) ->
        let m = Option.get slot.m in
        if (not slot.dirty) || writeback t bi bj slot m then begin
          drop_resident t slot;
          Tile_stats.record_eviction ()
        end
        else
          (* writeback failed (e.g. device full): keep the tile resident
             rather than lose data; don't retry it this pass *)
          Hashtbl.replace stuck (bi, bj) ()
    done
  end

let local_edits t bi bj =
  List.rev
    (match Hashtbl.find_opt t.overlays (bi, bj) with
    | Some l -> l
    | None -> [])

let replay_edits t bi bj m =
  List.iter
    (fun (r, c, v) ->
      let lr = r - (bi * t.trows) and lc = c - (bj * t.tcols) in
      match v with
      | Some x -> Smatrix.set m lr lc x
      | None -> Smatrix.remove m lr lc)
    (local_edits t bi bj)

(* Edits are last-write-wins per cell, so replaying only the newest
   edit of each (r, c) is equivalent to replaying the whole history.
   Compacting after every batch bounds a tile's journal by its distinct
   edited cells instead of the total edit count — a long-running daemon
   applies unboundedly many batches. *)
let compact_overlay t bij =
  match Hashtbl.find_opt t.overlays bij with
  | None -> ()
  | Some l ->
    let seen = Hashtbl.create 16 in
    let kept =
      (* the list is newest-first: a cell's first occurrence is its
         live edit *)
      List.filter
        (fun (r, c, _) ->
          if Hashtbl.mem seen (r, c) then false
          else begin
            Hashtbl.add seen (r, c) ();
            true
          end)
        l
    in
    Hashtbl.replace t.overlays bij kept

let rebuild_tile t bi bj slot =
  let rows = tile_rows t bi and cols = tile_cols t bj in
  (* With no construction-time source ([create]) the matrix started
     empty, so the overlays journal IS the tile's full history: replay
     onto an empty tile reconstructs it exactly. *)
  let base = match t.rebuild with Some src -> src bi bj | None -> [] in
  let m = Smatrix.of_coo t.dt rows cols base in
  replay_edits t bi bj m;
  Tile_stats.record_rebuild ();
  t.nv_total <- t.nv_total - slot.nv + Smatrix.nvals m;
  slot.nv <- Smatrix.nvals m;
  (* the store blob is gone or bad: resident copy is the newest *)
  slot.dirty <- true;
  m

let materialize t bi bj =
  let slot = t.slots.(bi).(bj) in
  match slot.m with
  | Some m ->
    touch t slot;
    m
  | None ->
    let fetched =
      if slot.nv = 0 && not (Hashtbl.mem t.overlays (bi, bj)) then `Empty
      else
        match Tile_store.get t.store ~key:(key bi bj) with
        | exception Fault.Injected _ -> `Missing
        | `Ok blob -> (
          match decode t.dt blob with
          | m -> `Ok m
          | exception _ ->
            (* verified bytes that still fail to decode: stale format or
               store bug — same recovery as corruption *)
            Tile_store.delete t.store ~key:(key bi bj);
            Tile_stats.record_quarantine ();
            `Corrupt)
        | (`Missing | `Corrupt) as r -> r
    in
    let m =
      match fetched with
      | `Empty -> Smatrix.create t.dt (tile_rows t bi) (tile_cols t bj)
      | `Ok m ->
        (* store blobs already include every applied edit (tiles are
           written back dirty), so no replay here *)
        slot.dirty <- false;
        m
      | `Missing | `Corrupt -> rebuild_tile t bi bj slot
    in
    note_resident t slot m;
    m

let with_tile t bi bj f =
  if bi < 0 || bi >= t.brows || bj < 0 || bj >= t.bcols then
    invalid_arg "Tmatrix.with_tile: tile index out of grid";
  let m = materialize t bi bj in
  t.pinned <- Some (bi, bj);
  Fun.protect
    ~finally:(fun () ->
      t.pinned <- None;
      enforce_budget t)
    (fun () -> f m)

let oob t r c =
  r < 0 || r >= t.nrows || c < 0 || c >= t.ncols

let update_edges t edits =
  List.iter
    (fun (r, c, _) ->
      if oob t r c then
        raise
          (Smatrix.Index_out_of_bounds
             (Printf.sprintf "Tmatrix.update_edges: (%d,%d) outside %dx%d" r c
                t.nrows t.ncols)))
    edits;
  let touched = Hashtbl.create 8 in
  List.iter
    (fun (r, c, v) ->
      let bi = r / t.trows and bj = c / t.tcols in
      if not (Hashtbl.mem touched (bi, bj)) then
        Hashtbl.add touched (bi, bj) ();
      with_tile t bi bj (fun m ->
          let slot = t.slots.(bi).(bj) in
          let before = Smatrix.nvals m in
          let lr = r - (bi * t.trows) and lc = c - (bj * t.tcols) in
          (match v with
          | Some x -> Smatrix.set m lr lc x
          | None -> Smatrix.remove m lr lc);
          let after = Smatrix.nvals m in
          slot.dirty <- true;
          slot.nv <- after;
          t.res_bytes <- t.res_bytes - slot.bytes;
          Tile_stats.add_resident ~tiles:0 ~bytes:(-slot.bytes);
          slot.bytes <- est_bytes (Smatrix.nrows m) after;
          t.res_bytes <- t.res_bytes + slot.bytes;
          Tile_stats.add_resident ~tiles:0 ~bytes:slot.bytes;
          t.nv_total <- t.nv_total - before + after);
      (* journal for rebuild replay *)
      let prev =
        match Hashtbl.find_opt t.overlays (bi, bj) with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace t.overlays (bi, bj) ((r, c, v) :: prev))
    edits;
  Hashtbl.iter (fun bij () -> compact_overlay t bij) touched;
  Hashtbl.length touched

let flush t =
  for bi = 0 to t.brows - 1 do
    for bj = 0 to t.bcols - 1 do
      let slot = t.slots.(bi).(bj) in
      match slot.m with
      | Some m when slot.dirty -> ignore (writeback t bi bj slot m)
      | _ -> ()
    done
  done

let get t r c =
  if oob t r c then None
  else
    let bi = r / t.trows and bj = c / t.tcols in
    with_tile t bi bj (fun m ->
        Smatrix.get m (r - (bi * t.trows)) (c - (bj * t.tcols)))

let to_smatrix t =
  let acc = ref [] in
  for bi = t.brows - 1 downto 0 do
    for bj = t.bcols - 1 downto 0 do
      if t.slots.(bi).(bj).nv > 0 then
        with_tile t bi bj (fun m ->
            let r0 = bi * t.trows and c0 = bj * t.tcols in
            Smatrix.iter (fun r c v -> acc := (r0 + r, c0 + c, v) :: !acc) m)
    done
  done;
  Smatrix.of_coo t.dt t.nrows t.ncols !acc

let destroy t =
  (* forget resident payloads first so gauges stay honest *)
  for bi = 0 to t.brows - 1 do
    for bj = 0 to t.bcols - 1 do
      let slot = t.slots.(bi).(bj) in
      if slot.m <> None then drop_resident t slot
    done
  done;
  Tile_store.clear t.store

(* Bucket global triples into per-tile local triples. *)
let bucket t iter_src =
  let buckets = Array.make_matrix t.brows t.bcols [] in
  iter_src (fun r c v ->
      let bi = r / t.trows and bj = c / t.tcols in
      buckets.(bi).(bj) <-
        (r - (bi * t.trows), c - (bj * t.tcols), v) :: buckets.(bi).(bj));
  buckets

let install_tiles t buckets =
  for bi = 0 to t.brows - 1 do
    for bj = 0 to t.bcols - 1 do
      match buckets.(bi).(bj) with
      | [] -> ()
      | coo ->
        let m =
          Smatrix.of_coo t.dt (tile_rows t bi) (tile_cols t bj) (List.rev coo)
        in
        let slot = t.slots.(bi).(bj) in
        slot.nv <- Smatrix.nvals m;
        slot.dirty <- true;
        t.nv_total <- t.nv_total + slot.nv;
        note_resident t slot m;
        enforce_budget t
    done
  done

let slice_of_iter t iter_src bi bj =
  let r0 = bi * t.trows and c0 = bj * t.tcols in
  let r1 = r0 + tile_rows t bi and c1 = c0 + tile_cols t bj in
  let acc = ref [] in
  iter_src (fun r c v ->
      if r >= r0 && r < r1 && c >= c0 && c < c1 then
        acc := (r - r0, c - c0, v) :: !acc);
  List.rev !acc

let of_smatrix ?dir ?tile ?budget src =
  let t =
    make ?dir ?tile ?budget (Smatrix.dtype src) (Smatrix.nrows src)
      (Smatrix.ncols src)
  in
  install_tiles t (bucket t (fun f -> Smatrix.iter f src));
  t.rebuild <- Some (fun bi bj -> slice_of_iter t (fun f -> Smatrix.iter f src) bi bj);
  t

let of_mm_file ?dir ?tile ?budget dt path =
  match Matrix_market.read_coo_result dt path with
  | Error e -> Error e
  | Ok (h, coo) ->
    let t = make ?dir ?tile ?budget dt h.Matrix_market.nrows h.Matrix_market.ncols in
    install_tiles t
      (bucket t (fun f -> List.iter (fun (r, c, v) -> f r c v) coo));
    t.rebuild <-
      Some
        (fun bi bj ->
          (* the file is the authority: re-read it rather than holding the
             triples in memory *)
          match Matrix_market.read_coo_result dt path with
          | Ok (_, coo) ->
            slice_of_iter t
              (fun f -> List.iter (fun (r, c, v) -> f r c v) coo)
              bi bj
          | Error e ->
            failwith
              (Printf.sprintf "tmatrix: rebuild source unreadable: %s"
                 (Error.to_string e)));
    Ok t
