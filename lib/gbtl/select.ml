type predicate =
  | Tril of int
  | Triu of int
  | Diag
  | Offdiag
  | Nonzero
  | Value_gt of float
  | Value_ge of float
  | Value_lt of float
  | Value_le of float
  | Value_eq of float
  | Value_ne of float

let accepts (type a) (dt : a Dtype.t) pred r c (x : a) =
  match pred with
  | Tril k -> c - r <= k
  | Triu k -> c - r >= k
  | Diag -> r = c
  | Offdiag -> r <> c
  | Nonzero -> Dtype.to_bool dt x
  | Value_gt v -> Dtype.to_float dt x > v
  | Value_ge v -> Dtype.to_float dt x >= v
  | Value_lt v -> Dtype.to_float dt x < v
  | Value_le v -> Dtype.to_float dt x <= v
  | Value_eq v -> Dtype.to_float dt x = v
  | Value_ne v -> Dtype.to_float dt x <> v

let keep_matrix m pred =
  let triples =
    Smatrix.fold
      (fun acc r c x -> if pred r c x then (r, c, x) :: acc else acc)
      [] m
  in
  Smatrix.of_coo (Smatrix.dtype m) (Smatrix.nrows m) (Smatrix.ncols m)
    (List.rev triples)

let matrix ?(mask = Mask.No_mmask) ?accum ?(replace = false) pred ~out a =
  if Smatrix.shape out <> Smatrix.shape a then
    Error.raise_dims ~op:"select"
      ~expected:
        (Printf.sprintf "output %s"
           (Error.shape_str (Smatrix.nrows a) (Smatrix.ncols a)))
      ~actual:(Error.shape_str (Smatrix.nrows out) (Smatrix.ncols out));
  let dt = Smatrix.dtype a in
  let t =
    Array.init (Smatrix.nrows a) (fun r ->
        let e = Entries.create () in
        Smatrix.iter_row
          (fun c x -> if accepts dt pred r c x then Entries.push e c x)
          a r;
        e)
  in
  Output.write_matrix ~mask ~accum ~replace ~out ~t

let vector ?(mask = Mask.No_vmask) ?accum ?(replace = false) pred ~out u =
  if Svector.size out <> Svector.size u then
    Error.raise_dims ~op:"select"
      ~expected:(Printf.sprintf "output size %d" (Svector.size u))
      ~actual:(Error.size_str (Svector.size out));
  let dt = Svector.dtype u in
  let t = Entries.create () in
  Svector.iter
    (fun i x -> if accepts dt pred 0 i x then Entries.push t i x)
    u;
  Output.write_vector ~mask ~accum ~replace ~out ~t
