let transpose ?(mask = Mask.No_mmask) ?accum ?(replace = false) ~out a =
  let at = Smatrix.transpose a in
  if Smatrix.shape out <> Smatrix.shape at then
    Error.raise_dims ~op:"transpose"
      ~expected:
        (Printf.sprintf "output %s"
           (Error.shape_str (Smatrix.nrows at) (Smatrix.ncols at)))
      ~actual:(Error.shape_str (Smatrix.nrows out) (Smatrix.ncols out));
  let t = Array.init (Smatrix.nrows at) (fun r -> Smatrix.row_entries at r) in
  Output.write_matrix ~mask ~accum ~replace ~out ~t
