let dim_err = Error.raise_dims

(* Region update for one index space.  [n] is the output dimension,
   [targets] the (duplicate-free) selected positions, [source pos] the
   source entry for selection position [pos].  Returns the "T" of the
   write step: old entries outside the region, updated region inside. *)
let overlay_entries ~n ~c_lookup ~c_entries ~targets ~source ~accum =
  let in_region = Array.make n false in
  let region_value : 'a option array = Array.make n None in
  Array.iteri
    (fun pos i ->
      in_region.(i) <- true;
      let v =
        match accum, source pos, c_lookup i with
        | _, None, None -> None
        | _, (Some _ as sv), None -> sv
        | None, None, Some _ -> None (* no accum: uncovered old entry dies *)
        | None, (Some _ as sv), Some _ -> sv
        | Some _, None, (Some _ as cv) -> cv
        | Some f, Some sv, Some cv -> Some (f cv sv)
      in
      region_value.(i) <- v)
    targets;
  let t = Entries.create () in
  let push_old i v = if not in_region.(i) then Entries.push t i v in
  (* Merge walk: old entries (sorted) interleaved with region positions.
     Region positions can be arbitrary, so walk a sorted copy. *)
  let sorted_targets = Array.copy targets in
  Array.sort Int.compare sorted_targets;
  let nc = Entries.length c_entries and nt = Array.length sorted_targets in
  let i = ref 0 and j = ref 0 in
  while !i < nc || !j < nt do
    let next_c = if !i < nc then Entries.get_idx c_entries !i else max_int in
    let next_t = if !j < nt then sorted_targets.(!j) else max_int in
    if next_c < next_t then begin
      push_old next_c (Entries.get_val c_entries !i);
      incr i
    end
    else begin
      (match region_value.(next_t) with
      | Some v -> Entries.push t next_t v
      | None -> ());
      if next_c = next_t then incr i;
      incr j
    end
  done;
  t

let vector ?(mask = Mask.No_vmask) ?accum ?(replace = false) ~out u idx =
  let n = Svector.size out in
  let targets = Index_set.resolve idx n in
  Index_set.check_no_duplicates targets;
  if Svector.size u <> Array.length targets then
    dim_err ~op:"assign"
      ~expected:(Printf.sprintf "source size %d" (Array.length targets))
      ~actual:(Error.size_str (Svector.size u));
  let accum_f = Option.map (fun (op : _ Binop.t) -> op.Binop.f) accum in
  let t =
    overlay_entries ~n ~c_lookup:(Svector.get out)
      ~c_entries:(Svector.entries out) ~targets ~source:(Svector.get u)
      ~accum:accum_f
  in
  Output.write_vector ~mask ~accum:None ~replace ~out ~t

let vector_scalar ?(mask = Mask.No_vmask) ?accum ?(replace = false) ~out s idx =
  let n = Svector.size out in
  let targets = Index_set.resolve idx n in
  Index_set.check_no_duplicates targets;
  let accum_f = Option.map (fun (op : _ Binop.t) -> op.Binop.f) accum in
  let t =
    overlay_entries ~n ~c_lookup:(Svector.get out)
      ~c_entries:(Svector.entries out) ~targets
      ~source:(fun _ -> Some s)
      ~accum:accum_f
  in
  Output.write_vector ~mask ~accum:None ~replace ~out ~t

(* Matrix region assign: per-row overlay over the selected columns. *)
let matrix_overlay ?(mask = Mask.No_mmask) ?accum ?(replace = false) ~out
    ~row_targets ~col_targets ~source_row () =
  Index_set.check_no_duplicates row_targets;
  Index_set.check_no_duplicates col_targets;
  let accum_f = Option.map (fun (op : _ Binop.t) -> op.Binop.f) accum in
  let nrows = Smatrix.nrows out and ncols = Smatrix.ncols out in
  let row_src = Array.make nrows (-1) in
  Array.iteri (fun p r -> row_src.(r) <- p) row_targets;
  let t =
    Array.init nrows (fun r ->
        if row_src.(r) < 0 then Smatrix.row_entries out r
        else
          overlay_entries ~n:ncols
            ~c_lookup:(fun c -> Smatrix.get out r c)
            ~c_entries:(Smatrix.row_entries out r)
            ~targets:col_targets
            ~source:(source_row row_src.(r))
            ~accum:accum_f)
  in
  Output.write_matrix ~mask ~accum:None ~replace ~out ~t

let matrix ?mask ?accum ?replace ~out a rows cols =
  let row_targets = Index_set.resolve rows (Smatrix.nrows out) in
  let col_targets = Index_set.resolve cols (Smatrix.ncols out) in
  if Smatrix.shape a <> (Array.length row_targets, Array.length col_targets)
  then
    dim_err ~op:"assign"
      ~expected:
        (Printf.sprintf "source %s"
           (Error.shape_str (Array.length row_targets)
              (Array.length col_targets)))
      ~actual:(Error.shape_str (Smatrix.nrows a) (Smatrix.ncols a));
  matrix_overlay ?mask ?accum ?replace ~out ~row_targets ~col_targets
    ~source_row:(fun p c -> Smatrix.get a p c)
    ()

let matrix_scalar ?mask ?accum ?replace ~out s rows cols =
  let row_targets = Index_set.resolve rows (Smatrix.nrows out) in
  let col_targets = Index_set.resolve cols (Smatrix.ncols out) in
  matrix_overlay ?mask ?accum ?replace ~out ~row_targets ~col_targets
    ~source_row:(fun _ _ -> Some s)
    ()
