(* Two storage representations behind one interface:

   - Sparse (the original layout): sorted (index, value) arrays, the
     first [nvals] cells meaningful.
   - Dense: a full [size]-length value array plus a validity bitmap;
     [nvals] counts the valid cells.

   Exactly one side is authoritative at a time: [dense = Some d] means
   the dense payload holds the entries and the sparse arrays are stale;
   [dense = None] means the sparse arrays hold them.  Conversions are
   explicit ([densify]/[sparsify]) plus a fill-ratio auto-switch on bulk
   writes, gated by [Format_stats.enabled].  Logical iteration order is
   ascending index in both representations, so every consumer sees the
   same entry sequence (bit-identical results either way). *)

type 'a dense = { dvals : 'a array; valid : bool array }

type 'a t = {
  dt : 'a Dtype.t;
  size : int;
  mutable nvals : int;
  mutable idx : int array;
  mutable vals : 'a array;
  mutable dense : 'a dense option;
}

exception Dimension_mismatch = Error.Dim_mismatch
exception Index_out_of_bounds of string

let create dt size =
  if size < 0 then invalid_arg "Svector.create: negative size";
  { dt; size; nvals = 0; idx = [||]; vals = [||]; dense = None }

let dtype v = v.dt
let size v = v.size
let nvals v = v.nvals
let is_dense v = v.dense <> None
let rep_name v = if is_dense v then "dense" else "sparse"

(* Hysteresis: dense above 1/4 fill, back to sparse below 1/16. *)
let densify_worthwhile v = v.size >= 32 && 4 * v.nvals >= v.size
let sparsify_worthwhile v = 16 * v.nvals < v.size

let check_index v i ctx =
  if i < 0 || i >= v.size then
    raise
      (Index_out_of_bounds
         (Printf.sprintf "%s: index %d outside [0, %d)" ctx i v.size))

(* Binary search for [i] in the sparse arrays; returns [Ok pos] if
   present, [Error ins] with the insertion point otherwise.  Only valid
   while the sparse side is authoritative. *)
let find v i =
  let lo = ref 0 and hi = ref v.nvals in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v.idx.(mid) < i then lo := mid + 1 else hi := mid
  done;
  if !lo < v.nvals && v.idx.(!lo) = i then Ok !lo else Error !lo

let ensure_capacity v n dummy =
  if Array.length v.idx < n then begin
    let cap = max 8 (max n (2 * Array.length v.idx)) in
    let idx' = Array.make cap 0 and vals' = Array.make cap dummy in
    Array.blit v.idx 0 idx' 0 v.nvals;
    Array.blit v.vals 0 vals' 0 v.nvals;
    v.idx <- idx';
    v.vals <- vals'
  end

let do_densify ~auto v =
  match v.dense with
  | Some _ -> ()
  | None ->
    let dvals = Array.make (max v.size 1) (Dtype.zero v.dt) in
    let valid = Array.make (max v.size 1) false in
    for k = 0 to v.nvals - 1 do
      dvals.(v.idx.(k)) <- v.vals.(k);
      valid.(v.idx.(k)) <- true
    done;
    v.dense <- Some { dvals; valid };
    Format_stats.record_densify ~auto

let do_sparsify ~auto v =
  match v.dense with
  | None -> ()
  | Some { dvals; valid } ->
    let n = v.nvals in
    if Array.length v.idx < n then begin
      v.idx <- Array.make (max n 8) 0;
      v.vals <- Array.make (max n 8) (Dtype.zero v.dt)
    end;
    let k = ref 0 in
    for i = 0 to v.size - 1 do
      if valid.(i) then begin
        v.idx.(!k) <- i;
        v.vals.(!k) <- dvals.(i);
        incr k
      end
    done;
    v.dense <- None;
    Format_stats.record_sparsify ~auto

let densify v = do_densify ~auto:false v
let sparsify v = do_sparsify ~auto:false v

let maybe_densify v =
  if Format_stats.enabled () && (not (is_dense v)) && densify_worthwhile v
  then do_densify ~auto:true v

let get v i =
  check_index v i "Svector.get";
  match v.dense with
  | Some { dvals; valid } -> if valid.(i) then Some dvals.(i) else None
  | None -> ( match find v i with Ok p -> Some v.vals.(p) | Error _ -> None)

let get_exn v i =
  match get v i with Some x -> x | None -> raise Not_found

let mem v i =
  check_index v i "Svector.mem";
  match v.dense with
  | Some { valid; _ } -> valid.(i)
  | None -> ( match find v i with Ok _ -> true | Error _ -> false)

(* Sparse-side insertion; the caller has checked the index and that the
   sparse arrays are authoritative. *)
let set_sparse v i x =
  match find v i with
  | Ok p -> v.vals.(p) <- x
  | Error p ->
    ensure_capacity v (v.nvals + 1) x;
    Array.blit v.idx p v.idx (p + 1) (v.nvals - p);
    Array.blit v.vals p v.vals (p + 1) (v.nvals - p);
    v.idx.(p) <- i;
    v.vals.(p) <- x;
    v.nvals <- v.nvals + 1

let set v i x =
  check_index v i "Svector.set";
  match v.dense with
  | Some { dvals; valid } ->
    dvals.(i) <- x;
    if not valid.(i) then begin
      valid.(i) <- true;
      v.nvals <- v.nvals + 1
    end
  | None -> set_sparse v i x

let remove v i =
  check_index v i "Svector.remove";
  match v.dense with
  | Some { valid; _ } ->
    if valid.(i) then begin
      valid.(i) <- false;
      v.nvals <- v.nvals - 1;
      if Format_stats.enabled () && sparsify_worthwhile v then
        do_sparsify ~auto:true v
    end
  | None -> (
    match find v i with
    | Error _ -> ()
    | Ok p ->
      Array.blit v.idx (p + 1) v.idx p (v.nvals - p - 1);
      Array.blit v.vals (p + 1) v.vals p (v.nvals - p - 1);
      v.nvals <- v.nvals - 1)

let clear v =
  v.nvals <- 0;
  v.dense <- None

let dup v =
  match v.dense with
  | Some { dvals; valid } ->
    { dt = v.dt;
      size = v.size;
      nvals = v.nvals;
      idx = [||];
      vals = [||];
      dense = Some { dvals = Array.copy dvals; valid = Array.copy valid } }
  | None ->
    { dt = v.dt;
      size = v.size;
      nvals = v.nvals;
      idx = Array.sub v.idx 0 v.nvals;
      vals = Array.sub v.vals 0 v.nvals;
      dense = None }

let of_coo ?dup dt size alist =
  let v = create dt size in
  let combine =
    match dup with
    | Some op -> op.Binop.f
    | None -> fun _ y -> y
  in
  let sorted = List.stable_sort (fun (i, _) (j, _) -> Int.compare i j) alist in
  List.iter
    (fun (i, x) ->
      check_index v i "Svector.of_coo";
      match find v i with
      | Ok p -> v.vals.(p) <- combine v.vals.(p) x
      | Error _ -> set_sparse v i x)
    sorted;
  maybe_densify v;
  v

let of_dense dt arr =
  let n = Array.length arr in
  let v = create dt n in
  ensure_capacity v n (if n > 0 then arr.(0) else Dtype.zero dt);
  Array.iteri
    (fun i x ->
      v.idx.(i) <- i;
      v.vals.(i) <- x)
    arr;
  v.nvals <- n;
  maybe_densify v;
  v

let of_dense_drop_zeros dt arr =
  let v = create dt (Array.length arr) in
  Array.iteri
    (fun i x ->
      if not (Dtype.equal_values dt x (Dtype.zero dt)) then set_sparse v i x)
    arr;
  maybe_densify v;
  v

let replace_contents v e =
  let n = Entries.length e in
  if n > 0 then begin
    let last = Entries.get_idx e (n - 1) in
    if last >= v.size then
      raise
        (Index_out_of_bounds
           (Printf.sprintf "Svector.replace_contents: index %d outside [0, %d)"
              last v.size));
    ensure_capacity v n (Entries.get_val e 0)
  end;
  for k = 0 to n - 1 do
    v.idx.(k) <- Entries.get_idx e k;
    v.vals.(k) <- Entries.get_val e k
  done;
  v.nvals <- n;
  v.dense <- None;
  maybe_densify v

let iter f v =
  match v.dense with
  | Some { dvals; valid } ->
    for i = 0 to v.size - 1 do
      if valid.(i) then f i dvals.(i)
    done
  | None ->
    for k = 0 to v.nvals - 1 do
      f v.idx.(k) v.vals.(k)
    done

let entries v =
  let e = Entries.create () in
  iter (fun i x -> Entries.push e i x) v;
  e

let fold f init v =
  let acc = ref init in
  iter (fun i x -> acc := f !acc i x) v;
  !acc

let to_alist v = List.rev (fold (fun acc i x -> (i, x) :: acc) [] v)

let to_dense ~fill v =
  let arr = Array.make v.size fill in
  iter (fun i x -> arr.(i) <- x) v;
  arr

let cast ~into v =
  let out = create into v.size in
  (match v.dense with
  | Some { dvals; valid } ->
    let dvals' = Array.make (max v.size 1) (Dtype.zero into) in
    for i = 0 to v.size - 1 do
      if valid.(i) then dvals'.(i) <- Dtype.cast ~from:v.dt ~into dvals.(i)
    done;
    out.dense <- Some { dvals = dvals'; valid = Array.copy valid }
  | None ->
    ensure_capacity out v.nvals (Dtype.zero into);
    for k = 0 to v.nvals - 1 do
      out.idx.(k) <- v.idx.(k);
      out.vals.(k) <- Dtype.cast ~from:v.dt ~into v.vals.(k)
    done);
  out.nvals <- v.nvals;
  out

let map v ~f =
  let out = dup v in
  (match out.dense with
  | Some { dvals; valid } ->
    for i = 0 to out.size - 1 do
      if valid.(i) then dvals.(i) <- f dvals.(i)
    done
  | None ->
    for k = 0 to out.nvals - 1 do
      out.vals.(k) <- f out.vals.(k)
    done);
  out

let map_inplace v ~f =
  match v.dense with
  | Some { dvals; valid } ->
    for i = 0 to v.size - 1 do
      if valid.(i) then dvals.(i) <- f dvals.(i)
    done
  | None ->
    for k = 0 to v.nvals - 1 do
      v.vals.(k) <- f v.vals.(k)
    done

let to_bool_dense v =
  let arr = Array.make v.size false in
  iter (fun i x -> arr.(i) <- Dtype.to_bool v.dt x) v;
  arr

(* Representation-agnostic: same size, same stored positions, same
   values — a dense vector equals its sparsified twin. *)
let equal a b =
  a.size = b.size && a.nvals = b.nvals
  &&
  try
    iter
      (fun i x ->
        match get b i with
        | Some y when Dtype.equal_values a.dt x y -> ()
        | Some _ | None -> raise Exit)
      a;
    true
  with Exit -> false

let unsafe_indices v =
  do_sparsify ~auto:false v;
  v.idx

let unsafe_values v =
  do_sparsify ~auto:false v;
  v.vals

let unsafe_dense v =
  do_densify ~auto:false v;
  match v.dense with
  | Some { dvals; valid } -> (dvals, valid)
  | None -> assert false

let of_dense_unsafe dt ~vals ~valid =
  let size = Array.length valid in
  if Array.length vals <> size then
    Error.raise_dims ~op:"Svector.of_dense_unsafe"
      ~expected:(Printf.sprintf "vals of length %d" size)
      ~actual:(Printf.sprintf "length %d" (Array.length vals));
  let n = ref 0 in
  for i = 0 to size - 1 do
    if valid.(i) then incr n
  done;
  { dt; size; nvals = !n; idx = [||]; vals = [||];
    dense = Some { dvals = vals; valid } }

let replace_dense_unsafe v ~vals ~valid =
  if Array.length valid <> v.size || Array.length vals <> v.size then
    Error.raise_dims ~op:"Svector.replace_dense_unsafe"
      ~expected:(Printf.sprintf "arrays of length %d" v.size)
      ~actual:(Printf.sprintf "lengths %d/%d" (Array.length vals)
                 (Array.length valid));
  let n = ref 0 in
  for i = 0 to v.size - 1 do
    if valid.(i) then incr n
  done;
  v.nvals <- !n;
  v.dense <- Some { dvals = vals; valid }

let pp fmt v =
  Format.fprintf fmt "@[<hov 2>Vector<%s>(size=%d, nvals=%d" (Dtype.name v.dt)
    v.size v.nvals;
  iter (fun i x -> Format.fprintf fmt ",@ %d:%s" i (Dtype.to_string v.dt x)) v;
  Format.fprintf fmt ")@]"
