let kron_rows (op : 'a Binop.t) a b =
  let nb = Smatrix.nrows b and mb = Smatrix.ncols b in
  Array.init
    (Smatrix.nrows a * nb)
    (fun row ->
      let ia = row / nb and ib = row mod nb in
      let e = Entries.create () in
      Smatrix.iter_row
        (fun ja va ->
          Smatrix.iter_row
            (fun jb vb -> Entries.push e ((ja * mb) + jb) (op.Binop.f va vb))
            b ib)
        a ia;
      e)

let kronecker ?(mask = Mask.No_mmask) ?accum ?(replace = false) op ~out a b =
  let nrows = Smatrix.nrows a * Smatrix.nrows b in
  let ncols = Smatrix.ncols a * Smatrix.ncols b in
  if Smatrix.shape out <> (nrows, ncols) then
    Error.raise_dims ~op:"kronecker"
      ~expected:(Printf.sprintf "output %s" (Error.shape_str nrows ncols))
      ~actual:(Error.shape_str (Smatrix.nrows out) (Smatrix.ncols out));
  Output.write_matrix ~mask ~accum ~replace ~out ~t:(kron_rows op a b)

let power op seed k =
  if k < 1 then invalid_arg "Kronecker.power: k must be >= 1";
  let result = ref (Smatrix.dup seed) in
  for _ = 2 to k do
    let nrows = Smatrix.nrows !result * Smatrix.nrows seed in
    let ncols = Smatrix.ncols !result * Smatrix.ncols seed in
    let out = Smatrix.create (Smatrix.dtype seed) nrows ncols in
    kronecker op ~out !result seed;
    result := out
  done;
  !result
