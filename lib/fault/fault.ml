exception Injected of string

type mode =
  | Always
  | Never
  | Once
  | Times of int
  | After of int
  | Prob of float

let points =
  [ "native.compile.exit";  (* compiler exits nonzero *)
    "native.compile.signal";  (* compiler killed by a signal *)
    "native.compile.hang";  (* compiler never returns (timeout path) *)
    "native.load.dynlink";  (* Dynlink refuses the plugin *)
    "native.load.unregistered";  (* plugin loads but registers no key *)
    "cache.write.eacces";  (* cache write denied *)
    "cache.write.enospc";  (* cache device full *)
    "cache.corrupt.cmxs";  (* on-disk plugin truncated/garbage *)
    "cache.corrupt.source";  (* cached source truncated/garbage *)
    "cache.mkdir.race";  (* concurrent mkdir wins the TOCTOU window *)
    "sched.worker.exn";  (* worker domain raises mid-plan *)
    "sched.worker.slow";  (* worker domain stalls on a node *)
    "par.worker.exn";  (* pool worker raises mid-chunk (degrade to seq) *)
    "par.worker.slow";  (* pool worker stalls on a chunk *)
    "serve.accept.exn";  (* daemon accept loop raises on a connection *)
    "serve.session.exn";  (* session handler dies mid-request *)
    "serve.batch.partial";  (* one member of a coalesced batch fails *)
    "cost.calib.corrupt";  (* calibration file truncated/garbage on load *)
    "analysis.effects.exn";  (* effect analysis dies mid-check (degrade loudly) *)
    "tile.read.corrupt";  (* on-disk tile truncated/garbage before verify *)
    "tile.write.enospc";  (* tile-store device full on a spill/checkpoint *)
    "tile.io.exn";  (* tile/checkpoint I/O raises mid-operation *)
    "tile.evict.slow" ]  (* eviction writeback stalls *)

let valid_point p = List.mem p points

let check_point p =
  if not (valid_point p) then
    invalid_arg (Printf.sprintf "Fault: unknown injection point %S" p)

(* All state behind one mutex: injection points are consulted from
   scheduler worker domains concurrently. *)
let lock = Mutex.create ()

let is_armed = ref false
let config : (string, mode) Hashtbl.t = Hashtbl.create 16
let attempts_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let fired_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let rng = ref (Random.State.make [| 2018 |])
let armed_summary = ref "disarmed"

let armed () = !is_armed

let bump tbl p =
  Hashtbl.replace tbl p (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p))

let mode_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Once -> "once"
  | Times n -> Printf.sprintf "x%d" n
  | After n -> Printf.sprintf "after%d" n
  | Prob p -> Printf.sprintf "p%g" p

let arm ?(seed = 2018) entries =
  List.iter (fun (p, _) -> check_point p) entries;
  Mutex.protect lock @@ fun () ->
  Hashtbl.reset config;
  Hashtbl.reset attempts_tbl;
  Hashtbl.reset fired_tbl;
  List.iter (fun (p, m) -> Hashtbl.replace config p m) entries;
  rng := Random.State.make [| seed |];
  is_armed := entries <> [];
  armed_summary :=
    if entries = [] then "disarmed"
    else
      String.concat ","
        (List.map
           (fun (p, m) -> Printf.sprintf "%s=%s" p (mode_to_string m))
           (List.sort compare entries))
      ^ Printf.sprintf ",seed=%d" seed

let disarm () = arm []

let parse_mode s =
  let len = String.length s in
  let tail i = String.sub s i (len - i) in
  match s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "once" -> Ok Once
  | _ when len > 1 && s.[0] = 'x' -> (
    match int_of_string_opt (tail 1) with
    | Some n when n >= 0 -> Ok (Times n)
    | _ -> Error (Printf.sprintf "bad count in %S" s))
  | _ when len > 5 && String.sub s 0 5 = "after" -> (
    match int_of_string_opt (tail 5) with
    | Some n when n >= 0 -> Ok (After n)
    | _ -> Error (Printf.sprintf "bad count in %S" s))
  | _ when len > 1 && s.[0] = 'p' -> (
    match float_of_string_opt (tail 1) with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
    | _ -> Error (Printf.sprintf "bad probability in %S" s))
  | _ -> Error (Printf.sprintf "unknown fault mode %S" s)

let split_entries s =
  String.split_on_char ','
    (String.concat "," (String.split_on_char ';' s))
  |> List.map String.trim
  |> List.filter (fun e -> e <> "")

let arm_spec spec =
  let rec parse acc seed = function
    | [] -> Ok (List.rev acc, seed)
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | None -> Error (Printf.sprintf "malformed entry %S (expected point=mode)" entry)
      | Some i -> (
        let k = String.sub entry 0 i in
        let v = String.sub entry (i + 1) (String.length entry - i - 1) in
        if k = "seed" then
          match int_of_string_opt v with
          | Some n -> parse acc n rest
          | None -> Error (Printf.sprintf "bad seed %S" v)
        else if not (valid_point k) then
          Error (Printf.sprintf "unknown injection point %S" k)
        else
          match parse_mode v with
          | Ok m -> parse ((k, m) :: acc) seed rest
          | Error e -> Error e))
  in
  match parse [] 2018 (split_entries spec) with
  | Error _ as e -> e
  | Ok (entries, seed) ->
    arm ~seed entries;
    Ok ()

let fire point =
  check_point point;
  if not !is_armed then false
  else
    Mutex.protect lock @@ fun () ->
    bump attempts_tbl point;
    let attempt = Hashtbl.find attempts_tbl point in
    let decision =
      match Hashtbl.find_opt config point with
      | None | Some Never -> false
      | Some Always -> true
      | Some Once -> attempt = 1
      | Some (Times n) -> attempt <= n
      | Some (After n) -> attempt > n
      | Some (Prob p) -> Random.State.float !rng 1.0 < p
    in
    if decision then bump fired_tbl point;
    decision

let attempts p =
  Mutex.protect lock (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt attempts_tbl p))

let fired p =
  Mutex.protect lock (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt fired_tbl p))

let counters () =
  Mutex.protect lock @@ fun () ->
  List.sort compare
    (Hashtbl.fold
       (fun p a acc ->
         (p, a, Option.value ~default:0 (Hashtbl.find_opt fired_tbl p)) :: acc)
       attempts_tbl [])

let reset_counters () =
  Mutex.protect lock @@ fun () ->
  Hashtbl.reset attempts_tbl;
  Hashtbl.reset fired_tbl

let describe () = Mutex.protect lock (fun () -> !armed_summary)

let suspended f =
  let prev =
    Mutex.protect lock (fun () ->
        let p = !is_armed in
        is_armed := false;
        p)
  in
  Fun.protect
    ~finally:(fun () -> Mutex.protect lock (fun () -> is_armed := prev))
    f

(* Arm from the environment at startup; a malformed spec is a loud no-op
   (chaos CI must not silently test nothing). *)
let () =
  match Sys.getenv_opt "OGB_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match arm_spec spec with
    | Ok () -> ()
    | Error e -> Printf.eprintf "OGB_FAULTS ignored: %s\n%!" e)
