(** Deterministic fault-injection harness.

    Named injection points are threaded through the JIT pipeline
    ([Native_backend], [Disk_cache]), the dispatcher and the execution
    scheduler.  Each site asks {!fire} whether the armed configuration
    wants the fault to happen there; what "the fault" means (a nonzero
    compiler exit, a truncated artifact, a worker exception, a stall) is
    decided by the site itself, so every hardened recovery path can be
    triggered exactly, on demand, without root privileges or a flaky
    filesystem.

    Configuration comes from the [OGB_FAULTS] environment variable at
    startup or from {!arm}/{!arm_spec} programmatically.  Probabilistic
    modes draw from a dedicated seeded RNG, so a spec plus a seed
    reproduces the same fault schedule every run. *)

exception Injected of string
(** Raised by injection sites that fail by raising (e.g. the scheduler
    worker); the payload is the injection-point name. *)

type mode =
  | Always  (** fire on every check *)
  | Never  (** registered but inert (counts attempts only) *)
  | Once  (** fire on the first check, pass afterwards *)
  | Times of int  (** fire on the first [n] checks *)
  | After of int  (** pass [n] checks, then fire on every one *)
  | Prob of float  (** fire with probability [p] (seeded RNG) *)

val points : string list
(** Catalog of valid injection-point names.  Arming an unknown point is
    an error, so a typo in a chaos spec fails loudly instead of testing
    nothing. *)

val armed : unit -> bool
(** Fast-path check: [false] means no spec is armed and every {!fire}
    returns [false] without touching any shared state. *)

val arm : ?seed:int -> (string * mode) list -> unit
(** Replace the armed configuration.  Raises [Invalid_argument] on an
    unknown point name.  [seed] (default 2018) reseeds the RNG and
    resets all counters. *)

val arm_spec : string -> (unit, string) result
(** Parse and arm a spec string:
    [point=mode[,point=mode...][,seed=N]] with modes
    [always], [never], [once], [xN] (first N), [afterN], [pF]
    (probability).  Entries may be separated by [','] or [';'].
    Example: ["native.compile.exit=once,sched.worker.exn=p0.25,seed=7"]. *)

val disarm : unit -> unit
(** Drop the configuration and reset counters; {!armed} becomes false. *)

val fire : string -> bool
(** [fire point] — should the named site inject its fault now?  Counts
    the attempt and (when true) the firing.  Raises [Invalid_argument]
    if [point] is not in {!points} (sites are validated too, not just
    specs). *)

val attempts : string -> int
val fired : string -> int

val counters : unit -> (string * int * int) list
(** [(point, attempts, fired)] for every point checked since arming,
    sorted by name. *)

val reset_counters : unit -> unit

val describe : unit -> string
(** One-line summary of the armed spec (["disarmed"] when inert) for
    logs and [ogb_cli doctor]. *)

val suspended : (unit -> 'a) -> 'a
(** Run [f] with injection temporarily off, restoring the previous
    armed/disarmed state afterwards (configuration and counters are
    preserved).  For tests that assert cache or trace bookkeeping that
    cannot hold under a globally armed chaos spec ([OGB_FAULTS]). *)
