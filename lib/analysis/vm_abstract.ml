open Gbtl
open Minivm.Ast
module C = Ogb.Container
module E = Ogb.Expr
module Ks = Jit.Kernel_sig

(* ==================================================================
   Part 1: signature emission for deferred expressions.

   [emit_eval]/[emit_operand] mirror [Expr.eval]/[Expr.eval_operand]
   decision for decision, but instead of dispatching each kernel they
   record its signature.  Where the concrete evaluator picks a variant
   at runtime (mxv push vs. pull), both variants are emitted — warm-up
   wants a superset.
   ================================================================== *)

type collector = { seen : (string, unit) Hashtbl.t; mutable sigs : Ks.t list }

let new_collector () = { seen = Hashtbl.create 32; sigs = [] }

let emit_sig col s =
  let k = Ks.key s in
  if not (Hashtbl.mem col.seen k) then begin
    Hashtbl.add col.seen k ();
    col.sigs <- s :: col.sigs
  end

let semiring_ops (sr : Jit.Op_spec.semiring) =
  [ ("add", sr.add_op); ("identity", sr.add_identity); ("mul", sr.mul_op) ]

let dt_name e =
  let (Dtype.P dt) = E.result_dtype e in
  Dtype.name dt

let rec xkind = function
  | E.Leaf (C.Vec _) -> `Vec
  | E.Leaf (C.Mat _) -> `Mat
  | E.Transpose x | E.Apply { x; _ } -> xkind x
  | E.MatMul { a; b; _ } -> (
    match xkind a, xkind b with `Mat, `Mat -> `Mat | _, _ -> `Vec)
  | E.EwiseAdd { a; _ } | E.EwiseMult { a; _ } -> xkind a
  | E.ReduceRows _ | E.ExtractVec _ -> `Vec
  | E.ExtractMat _ -> `Mat
  | E.Select { x; _ } -> xkind x

let rec borrows = function
  | E.Leaf _ -> true
  | E.Transpose x -> borrows x
  | E.MatMul _ | E.EwiseAdd _ | E.EwiseMult _ | E.Apply _ | E.ReduceRows _
  | E.ExtractVec _ | E.ExtractMat _ | E.Select _ ->
    false

let fused_candidate f x =
  if not (E.fusion ()) then None
  else begin
    let rec collect acc = function
      | E.Apply { f; x } -> collect (f :: acc) x
      | base -> (acc, base)
    in
    match collect [ f ] x with
    | chain, E.EwiseAdd { a; b; op } when xkind a = `Vec && xkind b = `Vec ->
      Some (chain, `Add, op, a, b)
    | chain, E.EwiseMult { a; b; op } when xkind a = `Vec && xkind b = `Vec ->
      Some (chain, `Mult, op, a, b)
    | _, _ -> None
  end

let rec strip = function
  | E.Transpose x ->
    let e, t = strip x in
    (e, not t)
  | e -> (e, false)

let rec emit_operand col e =
  let core, transposed = strip e in
  (match core with E.Transpose _ -> () | core -> emit_eval col core);
  (core, transposed)

and emit_eval col ?mask e =
  match e with
  | E.Leaf _ -> ()
  | E.Transpose _ ->
    (* top-level transpose materializes through the transpose kernel *)
    let core, transposed = emit_operand col e in
    if transposed && xkind core = `Mat then
      emit_sig col
        (Ks.make ~op:"transpose" ~dtypes:[ ("T", dt_name core) ] ())
  | E.MatMul { a; b; sr } -> (
    let _, ta = emit_operand col a in
    let _, tb = emit_operand col b in
    let dts = [ ("T", dt_name e) ] in
    let ops = semiring_ops sr in
    match xkind a, xkind b with
    | `Mat, `Mat -> (
      match mask with
      | None ->
        emit_sig col
          (Ks.make ~op:"mxm" ~dtypes:dts ~operators:ops
             ~flags:[ "gustavson" ] ())
      | Some (spec : E.mask_spec) ->
        if C.is_matrix spec.container then begin
          let flags =
            (if ta then [ "transpose_a" ] else [])
            @ (if tb then [ "transpose_b" ] else [])
            @
            if spec.complemented then [ "mask"; "mask_complement" ]
            else [ "mask" ]
          in
          emit_sig col (Ks.make ~op:"mxm" ~dtypes:dts ~operators:ops ~flags ())
        end)
    | `Mat, `Vec ->
      (* push dispatch always possible; the pull variant only under
         transpose, decided by runtime fill ratio — emit both *)
      emit_sig col
        (Ks.make ~op:"mxv" ~dtypes:dts ~operators:ops
           ~flags:(if ta then [ "transpose_a" ] else [])
           ());
      if ta then
        emit_sig col
          (Ks.make ~op:"mxv" ~dtypes:dts ~operators:ops
             ~formats:[ ("a", "csc") ]
             ~flags:[ "transpose_a" ] ())
    | `Vec, `Mat ->
      emit_sig col
        (Ks.make ~op:"vxm" ~dtypes:dts ~operators:ops
           ~flags:(if tb then [ "transpose_a" ] else [])
           ())
    | `Vec, `Vec -> (* runtime error; the verifier's domain *) ())
  | E.EwiseAdd { a; b; op } -> emit_ewise col `Add op a b e
  | E.EwiseMult { a; b; op } -> emit_ewise col `Mult op a b e
  | E.Apply { f; x } -> (
    match fused_candidate f x with
    | Some (chain, kind, op, a, b) ->
      ignore (emit_operand col a);
      ignore (emit_operand col b);
      let kind_name =
        match kind with
        | `Add -> "ewise_add_fused_v"
        | `Mult -> "ewise_mult_fused_v"
      in
      let chain_name =
        String.concat ";" (List.map Jit.Op_spec.unary_name chain)
      in
      emit_sig col
        (Ks.make ~op:kind_name
           ~dtypes:[ ("T", dt_name e) ]
           ~operators:[ ("op", op); ("chain", chain_name) ]
           ())
    | None -> (
      let _, transposed = emit_operand col x in
      (* a fresh computed temporary is mapped in place — no kernel *)
      let fresh = E.fusion () && not (borrows x) in
      let dts = [ ("T", dt_name x) ] in
      let fname = Jit.Op_spec.unary_name f in
      match xkind x with
      | `Vec ->
        if not fresh then
          emit_sig col
            (Ks.make ~op:"apply_v" ~dtypes:dts
               ~operators:[ ("f", fname) ]
               ())
      | `Mat ->
        if not (fresh && not transposed) then
          emit_sig col
            (Ks.make ~op:"apply_m" ~dtypes:dts
               ~operators:[ ("f", fname) ]
               ~flags:(if transposed then [ "transpose_a" ] else [])
               ())))
  | E.ReduceRows { op; identity; x } -> (
    let _, transposed = emit_operand col x in
    match xkind x with
    | `Mat ->
      emit_sig col
        (Ks.make ~op:"reduce_rows"
           ~dtypes:[ ("T", dt_name x) ]
           ~operators:[ ("op", op); ("identity", identity) ]
           ~flags:(if transposed then [ "transpose_a" ] else [])
           ())
    | `Vec -> ())
  | E.ExtractVec { x; _ } -> emit_eval col x
  | E.ExtractMat { x; _ } -> ignore (emit_operand col x)
  | E.Select { x; _ } -> emit_eval col x

and emit_ewise col kind op a b whole =
  let _, ta = emit_operand col a in
  let _, tb = emit_operand col b in
  let dts = [ ("T", dt_name whole) ] in
  match xkind a, xkind b with
  | `Vec, `Vec ->
    let kn =
      match kind with `Add -> "ewise_add_v" | `Mult -> "ewise_mult_v"
    in
    emit_sig col (Ks.make ~op:kn ~dtypes:dts ~operators:[ ("op", op) ] ())
  | `Mat, `Mat ->
    let kn =
      match kind with `Add -> "ewise_add_m" | `Mult -> "ewise_mult_m"
    in
    let flags =
      (if ta then [ "transpose_a" ] else [])
      @ if tb then [ "transpose_b" ] else []
    in
    emit_sig col
      (Ks.make ~op:kn ~dtypes:dts ~operators:[ ("op", op) ] ~flags ())
  | _, _ -> ()

let emit_reduce col ~op ~identity e =
  emit_eval col e;
  let kn =
    match xkind e with
    | `Vec -> "reduce_v_scalar"
    | `Mat -> "reduce_m_scalar"
  in
  emit_sig col
    (Ks.make ~op:kn
       ~dtypes:[ ("T", dt_name e) ]
       ~operators:[ ("op", op); ("identity", identity) ]
       ())

let expr_signatures ?mask e =
  let col = new_collector () in
  emit_eval col ?mask e;
  List.rev col.sigs

let reduce_signatures ~op ~identity e =
  let col = new_collector () in
  emit_reduce col ~op ~identity e;
  List.rev col.sigs

(* ==================================================================
   Part 2: the abstract VM.
   ================================================================== *)

type aval =
  | VUnknown
  | VNil
  | VBool of bool option
  | VNum of float option
  | VStr of string option
  | VList of aval array
  | VCont of C.t
  | VExpr of E.t
  | VOp of Ogb.Context.entry
  | VMask of Ogb.Ops.mask
  | VAllIdx
  | VView of C.t * Ogb.Ops.mask option
  | VClosure of string * string list * Minivm.Ast.block
  | VBuiltin of string

exception Return_of of aval

type frame = (string, aval) Hashtbl.t

type st = {
  col : collector;
  env : Minivm.Env.t;
  toplevel : frame;
  mutable depth : int;
}

let of_value = function
  | Minivm.Value.Nil -> VNil
  | Minivm.Value.Bool b -> VBool (Some b)
  | Minivm.Value.Int i -> VNum (Some (float_of_int i))
  | Minivm.Value.Float f -> VNum (Some f)
  | Minivm.Value.Str s -> VStr (Some s)
  | Minivm.Value.Builtin (name, _) -> VBuiltin name
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> VCont c
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Op_entry e) -> VOp e
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Mask_arg m) -> VMask m
  | Minivm.Value.Foreign Ogb.Vm_bridge.All_indices -> VAllIdx
  | _ -> VUnknown

let as_expr = function
  | VCont c -> Some (E.of_container c)
  | VExpr e -> Some e
  | _ -> None

let amask = function
  | VNil -> None
  | VCont c -> Some (Ogb.Ops.Mask c)
  | VMask m -> Some m
  | _ -> None

(* Mirror of [Ops.set]/[Ops.update]'s force step: the structural mask
   reaches the expression only for matrix targets ([Ops.prune_mask]);
   the write itself goes through the library, no kernels. *)
let emit_set col target mask e =
  let mask =
    if C.is_matrix target then
      match mask with
      | Some (Ogb.Ops.Mask mc) -> Some { E.container = mc; complemented = false }
      | Some (Ogb.Ops.Mask_complement mc) ->
        Some { E.container = mc; complemented = true }
      | None -> None
    else None
  in
  emit_eval col ?mask e

let lookup st frames name =
  let rec go = function
    | [] -> (
      match Minivm.Env.lookup st.env name with
      | v -> of_value v
      | exception _ -> VUnknown)
    | f :: rest -> (
      match Hashtbl.find_opt f name with Some v -> v | None -> go rest)
  in
  go frames

let assign frames name v =
  let rec go = function
    | [] -> ( match frames with f :: _ -> Hashtbl.replace f name v | [] -> ())
    | f :: rest ->
      if Hashtbl.mem f name then Hashtbl.replace f name v else go rest
  in
  go frames

let aunary op v =
  match op, v with
  | "~", VCont c -> VMask (Ogb.Ops.Mask_complement c)
  | "-", VNum x -> VNum (Option.map (fun x -> -.x) x)
  | "-", (VCont _ | VExpr _) -> (
    match as_expr v with
    | Some e -> VExpr (E.apply ~f:(Jit.Op_spec.Named "AdditiveInverse") e)
    | None -> VUnknown)
  | "not", _ -> VBool None
  | _, _ -> VUnknown

let abinary a op b =
  match op, as_expr a, as_expr b with
  | "@", Some ea, Some eb -> VExpr (E.matmul ea eb)
  | "+", Some ea, Some eb -> VExpr (E.add ea eb)
  | "*", Some ea, Some eb -> VExpr (E.mult ea eb)
  | _, _, _ -> (
    match op, a, b with
    | ("+" | "-" | "*" | "/" | "%"), VNum (Some x), VNum (Some y) ->
      VNum
        (Some
           (match op with
           | "+" -> x +. y
           | "-" -> x -. y
           | "*" -> x *. y
           | "/" -> x /. y
           | _ -> Float.rem x y))
    | ("+" | "-" | "*" | "/" | "%"), (VNum _ | VUnknown), (VNum _ | VUnknown)
      ->
      VNum None
    | ("<" | ">" | "<=" | ">=" | "==" | "!="), _, _ -> VBool None
    | ("and" | "or"), _, _ -> VBool None
    | _, _, _ -> VUnknown)

let aattr recv name =
  match recv, name with
  | VCont c, "T" -> VExpr (E.transpose (E.of_container c))
  | VExpr e, "T" -> VExpr (E.transpose e)
  | VCont _, "nvals" -> VNum None
  | VCont c, "size" ->
    if C.is_matrix c then VNum None
    else VNum (Some (float_of_int (C.size c)))
  | VCont c, "shape" ->
    if C.is_matrix c then begin
      let r, cl = C.shape c in
      VList [| VNum (Some (float_of_int r)); VNum (Some (float_of_int cl)) |]
    end
    else VUnknown
  | VCont c, "dtype" -> VStr (Some (C.dtype_name c))
  | VList arr, "length" -> VNum (Some (float_of_int (Array.length arr)))
  | _, _ -> VUnknown

let aindex a k =
  match a, k with
  | VCont _, VNum _ -> VNum None
  | VCont c, (VNil | VCont _ | VMask _) -> VView (c, amask k)
  | VCont c, VAllIdx -> VView (c, None)
  | VList arr, VNum (Some i) ->
    let i = int_of_float i in
    if i >= 0 && i < Array.length arr then arr.(i) else VUnknown
  | _, _ -> VUnknown

let do_set st target mask value =
  match value with
  | VExpr e -> emit_set st.col target mask e
  | VCont c -> emit_set st.col target mask (E.of_container c)
  | _ -> (* scalar assignment: library write, no kernels *) ()

let set_index st tv kv vv =
  match tv, kv with
  | VCont c, (VNil | VAllIdx) -> do_set st c None vv
  | VCont c, (VCont _ | VMask _) -> do_set st c (amask kv) vv
  | VView (c, m), (VNil | VAllIdx) -> do_set st c m vv
  | _, _ -> ()

let num_arg = function
  | VNum (Some x) :: _ -> Some x
  | _ -> None

let builtin_call st name args =
  match name, args with
  | "Vector", [ VNum (Some n) ] -> VCont (C.vector_empty (int_of_float n))
  | "Vector", [ VNum (Some n); VStr (Some dt) ] -> (
    match Dtype.of_name dt with
    | dt -> VCont (C.vector_empty ~dtype:dt (int_of_float n))
    | exception _ -> VUnknown)
  | "Vector", [ VList items ] ->
    VCont
      (C.vector_dense
         (List.map
            (fun v -> match v with VNum (Some x) -> x | _ -> 0.)
            (Array.to_list items)))
  | "Matrix", [ VNum (Some r); VNum (Some c) ] ->
    VCont (C.matrix_empty (int_of_float r) (int_of_float c))
  | "Matrix", [ VNum (Some r); VNum (Some c); VStr (Some dt) ] -> (
    match Dtype.of_name dt with
    | dt -> VCont (C.matrix_empty ~dtype:dt (int_of_float r) (int_of_float c))
    | exception _ -> VUnknown)
  | "Semiring", [ VStr (Some s) ] -> VOp (Ogb.Context.semiring s)
  | "Semiring", [ VStr (Some a); VStr (Some i); VStr (Some m) ] ->
    VOp (Ogb.Context.custom_semiring ~add_op:a ~add_identity:i ~mul_op:m)
  | "Monoid", [ VStr (Some op); VStr (Some identity) ] ->
    VOp (Ogb.Context.monoid ~op ~identity)
  | "BinaryOp", [ VStr (Some op) ] -> VOp (Ogb.Context.binary op)
  | "UnaryOp", [ VStr (Some op) ] -> VOp (Ogb.Context.unary op)
  | "UnaryOp", [ VStr (Some op); VNum (Some k) ] ->
    (* the bound constant folded abstractly — same float arithmetic as
       the VM, so the operator name renders identically *)
    VOp (Ogb.Context.unary_bound ~op k)
  | "Accumulator", [ VStr (Some op) ] -> VOp (Ogb.Context.accum op)
  | "reduce", [ v ] -> (
    match as_expr v with
    | Some e ->
      let op, identity = Ogb.Context.current_monoid () in
      emit_reduce st.col ~op ~identity e;
      VNum None
    | None -> VNum None)
  | "apply", [ v ] -> (
    match as_expr v with
    | Some e -> VExpr (Ogb.Ops.apply e)
    | None -> VUnknown)
  | "reduce_rows", [ v ] -> (
    match as_expr v with
    | Some e -> VExpr (Ogb.Ops.reduce_rows e)
    | None -> VUnknown)
  | "normalize_rows", _ -> VNil
  | "select", [ VStr (Some pred); VNum k; v ] -> (
    (* the predicate threshold does not reach any kernel signature (the
       select itself is a library pass), so an unknown constant is
       folded to 0 *)
    match as_expr v with
    | Some e ->
      let k = Option.value k ~default:0.0 in
      let p =
        match pred with
        | "gt" -> Gbtl.Select.Value_gt k
        | "eq" -> Gbtl.Select.Value_eq k
        | _ -> Gbtl.Select.Value_ge k
      in
      VExpr (Ogb.Ops.select p e)
    | None -> VUnknown)
  | "select", _ -> VUnknown
  | ("label_onehot" | "label_decode"), _ ->
    (* host-side scatter/decode: library writes, no kernels *)
    VNil
  | "abs", args -> VNum (Option.map Float.abs (num_arg args))
  | "float", [ VNum x ] -> VNum x
  | "int", [ VNum x ] ->
    VNum (Option.map (fun x -> Float.of_int (int_of_float x)) x)
  | ("min" | "max"), [ VNum (Some x); VNum (Some y) ] ->
    VNum (Some (if name = "min" then Float.min x y else Float.max x y))
  | ("min" | "max"), _ -> VNum None
  | ("len" | "range"), _ -> VNum None
  | "str", _ -> VStr None
  | "print", _ -> VNil
  | _, _ -> VUnknown

let rec exec_block st frames block = List.iter (exec_stmt st frames) block

and exec_stmt st frames = function
  | ExprStmt e -> ignore (aeval st frames e)
  | Assign (name, e) -> assign frames name (aeval st frames e)
  | SetIndex (t, k, v) ->
    let tv = aeval st frames t in
    let kv = aeval st frames k in
    let vv = aeval st frames v in
    set_index st tv kv vv
  | SetAttr (t, _, v) ->
    ignore (aeval st frames t);
    ignore (aeval st frames v)
  | If (c, tb, fb) ->
    ignore (aeval st frames c);
    exec_block st frames tb;
    exec_block st frames fb
  | While (c, body) ->
    (* two passes: signatures emitted in iteration 1 under contexts the
       loop itself may alter stabilize by iteration 2 *)
    ignore (aeval st frames c);
    exec_block st frames body;
    ignore (aeval st frames c);
    exec_block st frames body
  | For (var, iter, body) ->
    ignore (aeval st frames iter);
    assign frames var (VNum None);
    exec_block st frames body;
    exec_block st frames body
  | With (entries, body) ->
    let pushed =
      List.fold_left
        (fun n e ->
          match aeval st frames e with
          | VOp entry ->
            Ogb.Context.push entry;
            n + 1
          | _ -> n)
        0 entries
    in
    Fun.protect
      ~finally:(fun () ->
        for _ = 1 to pushed do
          Ogb.Context.pop ()
        done)
      (fun () -> exec_block st frames body)
  | Def (name, params, body) -> assign frames name (VClosure (name, params, body))
  | Return e -> raise (Return_of (aeval st frames e))
  | Break | Continue | Pass -> ()

and aeval st frames = function
  | Const v -> of_value v
  | Var name -> lookup st frames name
  | Unary (op, e) -> aunary op (aeval st frames e)
  | Binary (op, a, b) ->
    let av = aeval st frames a in
    let bv = aeval st frames b in
    abinary av op bv
  | Call (callee, args) ->
    let cv = aeval st frames callee in
    let avs = List.map (aeval st frames) args in
    call_value st cv avs
  | Method (recv, name, args) ->
    let rv = aeval st frames recv in
    let avs = List.map (aeval st frames) args in
    amethod st rv name avs
  | Attr (recv, name) -> aattr (aeval st frames recv) name
  | Index (a, b) ->
    let av = aeval st frames a in
    let bv = aeval st frames b in
    aindex av bv
  | ListLit items -> VList (Array.of_list (List.map (aeval st frames) items))
  | Lambda (params, body) -> VClosure ("<lambda>", params, body)

and amethod st recv name args =
  match recv, name, args with
  | VCont c, "update", [ m; v ] ->
    (match as_expr v with
    | Some e -> emit_set st.col c (amask m) e
    | None -> ());
    VNil
  | VCont c, "dup", [] -> VCont c
  | VCont _, "clear", [] -> VNil
  | VCont _, "get", [ _ ] -> VNum None
  | VCont _, "set", [ _; _ ] -> VNil
  | VList _, "append", [ _ ] -> VNil
  | VList _, "pop", [] -> VUnknown
  | _, _, _ -> VUnknown

and call_value st v args =
  match v with
  | VBuiltin name -> builtin_call st name args
  | VClosure (_, params, body) ->
    if st.depth > 8 then VUnknown
    else begin
      st.depth <- st.depth + 1;
      Fun.protect
        ~finally:(fun () -> st.depth <- st.depth - 1)
        (fun () ->
          let frame : frame = Hashtbl.create 8 in
          List.iteri
            (fun i p ->
              Hashtbl.replace frame p
                (match List.nth_opt args i with Some a -> a | None -> VUnknown))
            params;
          match exec_block st [ frame; st.toplevel ] body with
          | () -> VNil
          | exception Return_of r -> r)
    end
  | _ -> VUnknown

let signatures ?env program ~entry ~args =
  let env = match env with Some e -> e | None -> Vm_check.default_env () in
  let col = new_collector () in
  let toplevel : frame = Hashtbl.create 16 in
  let st = { col; env; toplevel; depth = 0 } in
  let base = Ogb.Context.depth () in
  Fun.protect
    ~finally:(fun () ->
      while Ogb.Context.depth () > base do
        Ogb.Context.pop ()
      done)
    (fun () ->
      (try exec_block st [ toplevel ] program with Return_of _ -> ());
      match Hashtbl.find_opt toplevel entry with
      | Some (VClosure _ as c) -> ignore (call_value st c args)
      | Some _ | None -> ());
  List.rev col.sigs
