(** Ahead-of-time JIT warm-up: drive {!Jit.Dispatch} over a set of
    kernel signatures (typically {!Vm_abstract.signatures} output)
    before the first real iteration runs.

    Each signature is warmed by invoking the corresponding kernel entry
    point on tiny stand-in operands chosen so the dispatched signature
    is exactly the requested one (e.g. a 32-element dense vector to
    force the mxv pull variant, a 4-element sparse one to force push).
    The kernel's {e result} is discarded — only the compile/cache side
    effect matters. *)

type status =
  | Already_cached  (** already in the in-memory kernel table *)
  | Compiled  (** warm-up triggered a fresh compile *)
  | Loaded  (** warm-up loaded the kernel from the disk cache *)
  | Skipped of string  (** no recipe, or the recipe failed — reason *)

type outcome = { sig_ : Jit.Kernel_sig.t; status : status }

val warm : Jit.Kernel_sig.t list -> outcome list
(** Also maintains {!Jit.Jit_stats}' [warm_requests]/[warm_compiles]
    counters. *)

val status_to_string : status -> string
