(* Static effect system over plan DAGs.

   Races (PR 3) knew one shared mutable location: a leaf matrix's lazily
   built CSC cache.  This module infers a read/write footprint for every
   plan node over every location class execution can actually touch, and
   derives scheduler hazards from footprint overlap — the CSC detector
   falls out as the [Csc_cache] instance (Races is now a filter over
   this analysis), and the vector representation switch surfaces a class
   Races could not see: [Svector.unsafe_indices]/[unsafe_values]
   sparsify a dense operand destructively (and [unsafe_dense] densifies
   a sparse one), so two scheduler-concurrent kernels reading the same
   physical dense vector both rebuild its sparse side at once.

   Locations are keyed by the *physical* backing storage, not the leaf
   node id: two distinct containers wrapping one [Svector]/[Smatrix]
   (aliased operands the DSL can produce with [of_svector] called
   twice) collapse to one location, and a vector [Transpose] node —
   the identity on its container — is resolved to whatever it
   aliases. *)

module Plan = Exec.Plan
module C = Ogb.Container
module IS = Set.Make (Int)

type access = Read | Write

type resource =
  | Mat_entries of int  (* CSR entries of the matrix canonical at [id] *)
  | Mat_csc of int  (* its lazily built CSC side-cache *)
  | Vec_entries of int  (* stored entries of the vector canonical at [id] *)
  | Vec_rep of int  (* its sparse/dense representation switch *)
  | Node_out of int  (* a node's own (private) result slot *)
  | Accum_sink  (* the assignment sink's container (written post-plan) *)
  | Op_context  (* operator-context stack (read-only during execution) *)

type footprint = { node : int; effects : (resource * access) list }

type kind = Write_write | Read_write

type cls = Csc_cache | Rep_switch

type hazard = {
  a : int;
  b : int;
  owner : int;
  cls : cls;
  kind : kind;
  container : C.t option;
}

type strategy = Prebuild | Edge

exception Effect_hazard of { stage : string; hazards : hazard list }

(* -- alias resolution --
   Canonical owner per physical storage: the first (topo-order) node
   whose container wraps it.  Vector transposes are the identity on the
   container, so they inherit their dependency's canonical id. *)

type canon = {
  ids : (int, int) Hashtbl.t;  (* leaf/alias node id -> canonical owner id *)
  conts : (int, C.t) Hashtbl.t;  (* canonical owner id -> a container *)
  mutable reg : ([ `M | `V ] * Obj.t * int) list;  (* storage -> owner *)
  mutable aliased : int;  (* distinct nodes collapsed into an owner *)
  mutable next_syn : int;  (* ids for non-node containers (masks) *)
}

let storage_of_container = function
  | C.Mat (_, m) -> (`M, Obj.repr m)
  | C.Vec (_, v) -> (`V, Obj.repr v)

let canon_find canon c =
  let tag, o = storage_of_container c in
  List.find_opt (fun (t, o', _) -> t = tag && o' == o) canon.reg

(* Owner id for a container that is not itself a plan node (a mask):
   resolves to the leaf it aliases when it shares storage with one,
   otherwise gets a synthetic (negative) id — a reader-only location. *)
let canon_of_container canon c =
  match canon_find canon c with
  | Some (_, _, owner) -> owner
  | None ->
    let tag, o = storage_of_container c in
    let owner = canon.next_syn in
    canon.next_syn <- owner - 1;
    canon.reg <- (tag, o, owner) :: canon.reg;
    Hashtbl.replace canon.conts owner c;
    owner

let build_canon plan order =
  let canon =
    { ids = Hashtbl.create 32; conts = Hashtbl.create 32; reg = [];
      aliased = 0; next_syn = -1 }
  in
  let register id c =
    match canon_find canon c with
    | Some (_, _, owner) ->
      if owner <> id then canon.aliased <- canon.aliased + 1;
      Hashtbl.replace canon.ids id owner
    | None ->
      let tag, o = storage_of_container c in
      canon.reg <- (tag, o, id) :: canon.reg;
      Hashtbl.replace canon.ids id id;
      Hashtbl.replace canon.conts id c
  in
  List.iter
    (fun id ->
      let n = Plan.node plan id in
      match n.Plan.op with
      | Plan.Leaf c -> register id c
      | Plan.Transpose when n.Plan.kind = Plan.K_vec ->
        (* vector transpose is the identity: alias the dependency *)
        if Array.length n.Plan.deps > 0 then begin
          match Hashtbl.find_opt canon.ids n.Plan.deps.(0) with
          | Some owner -> Hashtbl.replace canon.ids id owner
          | None -> ()
        end
      | _ -> ())
    order;
  canon

(* -- per-node effect inference -- *)

(* Dependency positions through which executing [n] may build a CSC
   index: transposed Mat×Vec (pull dispatch decides at runtime — unless
   the schedule pinned push, which never leaves the CSR side) and
   unmasked Mat×Mat reading a transposed operand through the CSC
   transpose view. *)
let csc_touch_positions plan n =
  match n.Plan.op with
  | Plan.MatMul { transpose_a; transpose_b; masked; layout; _ }
    when Array.length n.Plan.deps >= 2 -> (
    let ka = (Plan.node plan n.Plan.deps.(0)).Plan.kind in
    let kb = (Plan.node plan n.Plan.deps.(1)).Plan.kind in
    match ka, kb, masked with
    | Plan.K_mat, Plan.K_vec, _ ->
      if transpose_a && layout <> Plan.L_csc_push then [ 0 ] else []
    | Plan.K_mat, Plan.K_mat, None ->
      (if transpose_a then [ 0 ] else [])
      @ (if transpose_b then [ 1 ] else [])
    | _, _, _ -> [])
  | _ -> []

(* Ops that hand vector operands to a kernel through the destructive
   array ABI (unsafe_indices/unsafe_values sparsify a dense operand in
   place).  Extract/Select read through the non-destructive accessors,
   and Transpose is the identity. *)
let destructive_vec_reader n =
  match n.Plan.op with
  | Plan.MatMul _ | Plan.Ewise _ | Plan.ApplyChain _ | Plan.EwiseApply _
  | Plan.EwiseMultReduce _ | Plan.ReduceScalar _ -> true
  | Plan.Leaf _ | Plan.Transpose | Plan.ReduceRows _ | Plan.ExtractVec _
  | Plan.ExtractMat _ | Plan.Select _ -> false

let has_operators n =
  match n.Plan.op with
  | Plan.Leaf _ | Plan.Transpose | Plan.ExtractVec _ | Plan.ExtractMat _
  | Plan.Select _ -> false
  | Plan.MatMul _ | Plan.Ewise _ | Plan.ApplyChain _ | Plan.EwiseApply _
  | Plan.EwiseMultReduce _ | Plan.ReduceRows _ | Plan.ReduceScalar _ -> true

let vec_size infos id =
  match Hashtbl.find_opt infos id with
  | Some { Verify.shape = Verify.S_vec n; _ } -> Some n
  | Some _ | None -> None

(* Auto-densification floor (Svector's densify_worthwhile): vectors
   smaller than this never grow a dense side, so their representation is
   stable under the sparse ABI. *)
let densify_floor = 32

let footprints_canon ?(assume_formats = false) plan =
  let formats_on = assume_formats || Gbtl.Format_stats.enabled () in
  let order = Plan.topo plan in
  let canon = build_canon plan order in
  let infos =
    (* shape inference refines the representation-stability rule; a
       plan the verifier rejects gets no refinement (conservative) *)
    try Verify.infer ~stage:"effects" plan with _ -> Hashtbl.create 0
  in
  let leaf_info id =
    (* canonical owner + observed storage facts, when [id] resolves to
       (an alias of) a leaf *)
    match Hashtbl.find_opt canon.ids id with
    | Some owner -> (
      match Hashtbl.find_opt canon.conts owner with
      | Some (C.Mat (_, m) as c) ->
        Some (owner, c, `Mat (Gbtl.Smatrix.csc_cached m))
      | Some (C.Vec (_, v) as c) ->
        Some (owner, c, `Vec (Gbtl.Svector.is_dense v))
      | None -> None)
    | None -> None
  in
  let mask_read spec =
    (* masks are read through the non-destructive accessors; canonical
       by storage so a mask aliasing an operand shares its location *)
    let c = spec.Ogb.Expr.container in
    let owner = canon_of_container canon c in
    match c with
    | C.Mat _ -> (Mat_entries owner, Read)
    | C.Vec _ -> (Vec_entries owner, Read)
  in
  let fp_of id =
    let n = Plan.node plan id in
    let acc = ref [] in
    let push e = acc := e :: !acc in
    (match n.Plan.op with
    | Plan.Leaf _ -> ()
    | _ -> push (Node_out id, Write));
    if has_operators n then push (Op_context, Read);
    (match n.Plan.op with
    | Plan.MatMul { masked = Some spec; _ } -> push (mask_read spec)
    | _ -> ());
    if (Plan.root plan).Plan.id = id then begin
      (match plan.Plan.sink_mask with
      | Some spec -> push (mask_read spec)
      | None -> ());
      if n.Plan.kind <> Plan.K_scalar then push (Accum_sink, Write)
    end;
    let touches = csc_touch_positions plan n in
    Array.iteri
      (fun pos d ->
        let dn = Plan.node plan d in
        match dn.Plan.kind with
        | Plan.K_scalar -> ()
        | Plan.K_mat -> (
          match leaf_info d with
          | Some (owner, _, `Mat cached) ->
            push (Mat_entries owner, Read);
            if formats_on && (not cached) && List.mem pos touches then
              push (Mat_csc owner, Write)
          | Some _ | None ->
            (* intermediate matrix: its CSC side is necessarily absent
               when the node runs, so a toucher always builds it *)
            push (Node_out d, Read);
            if formats_on && List.mem pos touches then push (Mat_csc d, Write))
        | Plan.K_vec -> (
          match leaf_info d with
          | Some (owner, _, `Vec dense) ->
            push (Vec_entries owner, Read);
            (* a dense operand is sparsified in place by the array ABI
               regardless of the format toggle *)
            if dense && destructive_vec_reader n then
              push (Vec_rep owner, Write)
          | Some _ | None ->
            push (Node_out d, Read);
            (* intermediates are built sparse and auto-densified when
               the format layer finds it worthwhile — statically: any
               vector at or above the densify floor may come out dense,
               and the next kernel will sparsify it back *)
            let unstable =
              match vec_size infos d with
              | Some sz -> sz >= densify_floor
              | None -> true
            in
            if formats_on && unstable && destructive_vec_reader n then
              push (Vec_rep d, Write)))
      n.Plan.deps;
    { node = id; effects = List.rev !acc }
  in
  (canon, List.map fp_of order)

let footprints ?assume_formats plan =
  snd (footprints_canon ?assume_formats plan)

(* -- hazards --
   Group resources by the storage they live in (a matrix's CSC cache
   overlaps its entries; a vector's representation switch overlaps its
   entries and, for intermediates, the node output it arrived as), then
   report unordered writer/writer and writer/reader pairs per group.
   Node outputs have exactly one writer — the producer, an ancestor of
   every consumer — so they never conflict and only contribute reads. *)

let find ?assume_formats plan =
  let order = Plan.topo plan in
  let canon, fps = footprints_canon ?assume_formats plan in
  let kind_of id = (Plan.node plan id).Plan.kind in
  let group_of = function
    | Mat_entries l | Mat_csc l -> Some (`Mat l)
    | Vec_entries l | Vec_rep l -> Some (`Vec l)
    | Node_out d -> (
      match kind_of d with
      | Plan.K_mat -> Some (`Mat d)
      | Plan.K_vec -> Some (`Vec d)
      | Plan.K_scalar -> None)
    | Accum_sink | Op_context -> None
  in
  let writers : ([ `Mat of int | `Vec of int ], IS.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let readers = Hashtbl.create 16 in
  let add tbl g id =
    let cur =
      match Hashtbl.find_opt tbl g with Some s -> s | None -> IS.empty
    in
    Hashtbl.replace tbl g (IS.add id cur)
  in
  List.iter
    (fun fp ->
      List.iter
        (fun (r, a) ->
          match group_of r, a, r with
          | Some g, Write, (Mat_csc _ | Vec_rep _) -> add writers g fp.node
          | Some g, Read, _ -> add readers g fp.node
          | _, _, _ -> ())
        fp.effects)
    fps;
  (* DAG ancestor sets in topo order (as in the scheduler) *)
  let anc : (int, IS.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let n = Plan.node plan id in
      let s =
        Array.fold_left
          (fun acc d ->
            let da =
              match Hashtbl.find_opt anc d with
              | Some s -> s
              | None -> IS.empty
            in
            IS.add d (IS.union acc da))
          IS.empty n.Plan.deps
      in
      Hashtbl.replace anc id s)
    order;
  let ancestors id =
    match Hashtbl.find_opt anc id with Some s -> s | None -> IS.empty
  in
  let unordered a b =
    (not (IS.mem a (ancestors b))) && not (IS.mem b (ancestors a))
  in
  let out : (int * int * int, hazard) Hashtbl.t = Hashtbl.create 8 in
  let emit kind x y g =
    let owner = match g with `Mat l | `Vec l -> l in
    let cls = match g with `Mat _ -> Csc_cache | `Vec _ -> Rep_switch in
    let a, b = if x <= y then (x, y) else (y, x) in
    if a <> b then begin
      let key = (a, b, owner) in
      if (not (Hashtbl.mem out key)) && unordered a b then
        Hashtbl.replace out key
          { a; b; owner; cls; kind;
            container = Hashtbl.find_opt canon.conts owner }
    end
  in
  (* write-write pairs first so they win the dedup over read-write *)
  Hashtbl.iter
    (fun g ws ->
      IS.iter
        (fun w1 -> IS.iter (fun w2 -> if w1 < w2 then emit Write_write w1 w2 g) ws)
        ws)
    writers;
  Hashtbl.iter
    (fun g ws ->
      let rs =
        match Hashtbl.find_opt readers g with Some s -> s | None -> IS.empty
      in
      IS.iter
        (fun w ->
          IS.iter
            (fun r -> if not (IS.mem r ws) then emit Read_write w r g)
            rs)
        ws)
    writers;
  let lst = Hashtbl.fold (fun _ h acc -> h :: acc) out [] in
  List.sort (fun x y -> compare (x.a, x.b, x.owner) (y.a, y.b, y.owner)) lst

(* -- remedies --
   Prebuild performs the lazy conversion eagerly, before any domain
   starts: [ensure_csc] for a matrix index, [sparsify] for a dense
   vector the sparse ABI would flip mid-flight.  Both are value-
   preserving.  Hazards on intermediates have no container to prepare,
   so they fall back to a dependency edge; Edge serializes the pair
   outright.  Every added edge is directed from the topo-earlier node
   to the topo-later one (positions taken before any edit), so the
   additions are consistent with one linear order and cannot form a
   cycle; trailing deps are harmless because [execute_node] reads its
   operands positionally from the front. *)

let add_edge pos plan h =
  let p id = match Hashtbl.find_opt pos id with Some p -> p | None -> max_int in
  let first, second = if p h.a < p h.b then (h.a, h.b) else (h.b, h.a) in
  let n = Plan.node plan second in
  if not (Array.exists (fun d -> d = first) n.Plan.deps) then
    n.Plan.deps <- Array.append n.Plan.deps [| first |]

let remedy ~strategy plan =
  let hazards = find plan in
  let pos : (int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace pos id i) (Plan.topo plan);
  List.iter
    (fun h ->
      match strategy, h.cls, h.container with
      | Prebuild, Csc_cache, Some (C.Mat (_, m)) -> Gbtl.Smatrix.ensure_csc m
      | Prebuild, Rep_switch, Some (C.Vec (_, v)) -> Gbtl.Svector.sparsify v
      | Prebuild, _, _ | Edge, _, _ -> add_edge pos plan h)
    hazards;
  hazards

(* -- rendering -- *)

let kind_to_string = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"

let cls_to_string = function
  | Csc_cache -> "CSC side-cache"
  | Rep_switch -> "sparse/dense representation"

let describe h =
  Printf.sprintf
    "%s hazard on the %s of node #%d between unordered nodes #%d and #%d \
     (remedy: %s, or add a dependency edge)"
    (kind_to_string h.kind) (cls_to_string h.cls) h.owner h.a h.b
    (match h.cls with
    | Csc_cache -> "prebuild the index"
    | Rep_switch -> "pre-sparsify the vector")

let resource_to_string = function
  | Mat_entries l -> Printf.sprintf "mat#%d.entries" l
  | Mat_csc l -> Printf.sprintf "mat#%d.csc" l
  | Vec_entries l -> Printf.sprintf "vec#%d.entries" l
  | Vec_rep l -> Printf.sprintf "vec#%d.rep" l
  | Node_out d -> Printf.sprintf "out#%d" d
  | Accum_sink -> "sink"
  | Op_context -> "ctx"

let report ?assume_formats plan =
  let canon, fps = footprints_canon ?assume_formats plan in
  let buf = Buffer.create 256 in
  List.iter
    (fun fp ->
      let n = Plan.node plan fp.node in
      let side a =
        match
          List.filter_map
            (fun (r, a') -> if a' = a then Some (resource_to_string r) else None)
            fp.effects
        with
        | [] -> "-"
        | rs -> String.concat "," rs
      in
      Buffer.add_string buf
        (Printf.sprintf "  #%-3d %-14s R{%s} W{%s}\n" fp.node
           (Plan.op_label n.Plan.op) (side Read) (side Write)))
    fps;
  if canon.aliased > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  (%d aliased node(s) collapsed by physical storage)\n"
         canon.aliased);
  Buffer.contents buf

let message = function
  | Effect_hazard { stage; hazards } ->
    Some
      (Printf.sprintf "effect analysis [%s]: %s" stage
         (String.concat "; " (List.map describe hazards)))
  | _ -> None
