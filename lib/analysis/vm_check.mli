(** Static scope and arity checking for MiniVM programs.

    Validates an {!Minivm.Ast.block} without running it: variable
    references resolve against Python-style function-wide locals plus
    the globals an installed environment provides (bridge builtins,
    [Replace], [NoMask], ...); attribute, method, and builtin calls are
    checked against {!Ogb.Vm_bridge}'s registry.  An unbound-variable
    finding carries the {e same} message {!Minivm.Vm_error.message}
    renders at runtime, so the static and dynamic diagnostics agree
    verbatim. *)

type what = Unbound | Unknown_method | Unknown_attr | Arity

type finding = {
  what : what;
  enclosing : string option;  (** function whose body holds the defect *)
  message : string;
}

val default_env : unit -> Minivm.Env.t
(** Fresh environment with {!Minivm.Builtins.install} and
    {!Ogb.Vm_bridge.install} applied — the environment tier-1 encodings
    run in. *)

val check : ?env:Minivm.Env.t -> Minivm.Ast.block -> finding list
(** All findings, in program order.  [env] defaults to
    {!default_env}[ ()]. *)

val describe : finding -> string
