(* Scheduler race detection on leaf matrices' CSC caches — since PR 8 a
   thin view over {!Effects}, which generalizes the footprint/conflict
   machinery that used to live here to every mutable location class.
   This module keeps the original leaf-matrix surface (and diagnostic
   wording) for callers and tests that predate the effect system. *)

module C = Ogb.Container

type kind = Write_write | Read_write

type conflict = {
  a : int;
  b : int;
  leaf : int;
  kind : kind;
  container : C.t;
}

type strategy = Prebuild | Edge

let find ?assume_formats plan =
  Effects.find ?assume_formats plan
  |> List.filter_map (fun (h : Effects.hazard) ->
         match h.Effects.cls, h.Effects.container with
         | Effects.Csc_cache, Some container ->
           Some
             { a = h.Effects.a;
               b = h.Effects.b;
               leaf = h.Effects.owner;
               kind =
                 (match h.Effects.kind with
                 | Effects.Write_write -> Write_write
                 | Effects.Read_write -> Read_write);
               container }
         | _, _ -> None)

let enforce ~strategy plan =
  let conflicts = find plan in
  (match strategy with
  | Prebuild ->
    List.iter
      (fun c ->
        match c.container with
        | C.Mat (_, m) -> Gbtl.Smatrix.ensure_csc m
        | C.Vec _ -> ())
      conflicts
  | Edge ->
    (* Direct every added edge from the topo-earlier node to the
       topo-later one (positions taken before any edit), so the set of
       additions is consistent with one linear order and cannot form a
       cycle.  Extra trailing deps are harmless: [execute_node] reads
       its operands positionally from the front. *)
    let pos : (int, int) Hashtbl.t = Hashtbl.create 32 in
    List.iteri (fun i id -> Hashtbl.replace pos id i) (Exec.Plan.topo plan);
    List.iter
      (fun c ->
        let p id =
          match Hashtbl.find_opt pos id with Some p -> p | None -> max_int
        in
        let first, second = if p c.a < p c.b then (c.a, c.b) else (c.b, c.a) in
        let n = Exec.Plan.node plan second in
        if not (Array.exists (fun d -> d = first) n.Exec.Plan.deps) then
          n.Exec.Plan.deps <- Array.append n.Exec.Plan.deps [| first |])
      conflicts);
  conflicts

let kind_to_string = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"

let describe c =
  Printf.sprintf
    "%s race on the CSC cache of leaf #%d between unordered nodes #%d and #%d \
     (remedy: prebuild the index, or add a dependency edge)"
    (kind_to_string c.kind) c.leaf c.a c.b
