module Plan = Exec.Plan
module C = Ogb.Container
module IS = Set.Make (Int)

type kind = Write_write | Read_write

type conflict = {
  a : int;
  b : int;
  leaf : int;
  kind : kind;
  container : C.t;
}

type strategy = Prebuild | Edge

(* A node "touches" a leaf matrix's CSC cache when executing it may
   build the index: transposed Mat×Vec (pull dispatch decides at
   runtime) and unmasked Mat×Mat reading a transposed operand through
   [Smatrix.unsafe_transpose_view].  Both paths only exist under
   format-aware dispatch, and only matter while the cache is absent. *)

let find ?(assume_formats = false) plan =
  if not (assume_formats || Gbtl.Format_stats.enabled ()) then []
  else begin
    let order = Plan.topo plan in
    let anc : (int, IS.t) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun id ->
        let n = Plan.node plan id in
        let s =
          Array.fold_left
            (fun acc d ->
              let da =
                match Hashtbl.find_opt anc d with
                | Some s -> s
                | None -> IS.empty
              in
              IS.add d (IS.union acc da))
            IS.empty n.Plan.deps
        in
        Hashtbl.replace anc id s)
      order;
    let ancestors id =
      match Hashtbl.find_opt anc id with Some s -> s | None -> IS.empty
    in
    let unordered a b =
      (not (IS.mem a (ancestors b))) && not (IS.mem b (ancestors a))
    in
    let uncached_leaf_matrix id =
      match (Plan.node plan id).Plan.op with
      | Plan.Leaf (C.Mat (_, m) as c) when not (Gbtl.Smatrix.csc_cached m) ->
        Some c
      | _ -> None
    in
    let leaf_matrix id =
      match (Plan.node plan id).Plan.op with
      | Plan.Leaf (C.Mat (_, _) as c) -> Some c
      | _ -> None
    in
    let touchers : (int, IS.t) Hashtbl.t = Hashtbl.create 8 in
    let readers : (int, IS.t) Hashtbl.t = Hashtbl.create 8 in
    let containers : (int, C.t) Hashtbl.t = Hashtbl.create 8 in
    let add tbl leaf id =
      let cur =
        match Hashtbl.find_opt tbl leaf with Some s -> s | None -> IS.empty
      in
      Hashtbl.replace tbl leaf (IS.add id cur)
    in
    let touch node dep_idx =
      let n = Plan.node plan node in
      if dep_idx < Array.length n.Plan.deps then begin
        let leaf = n.Plan.deps.(dep_idx) in
        match uncached_leaf_matrix leaf with
        | Some c ->
          Hashtbl.replace containers leaf c;
          add touchers leaf node
        | None -> ()
      end
    in
    List.iter
      (fun id ->
        let n = Plan.node plan id in
        Array.iter
          (fun d ->
            match leaf_matrix d with
            | Some c ->
              Hashtbl.replace containers d c;
              add readers d id
            | None -> ())
          n.Plan.deps;
        match n.Plan.op with
        | Plan.MatMul { transpose_a; transpose_b; masked; _ }
          when Array.length n.Plan.deps >= 2 -> (
          let ka = (Plan.node plan n.Plan.deps.(0)).Plan.kind in
          let kb = (Plan.node plan n.Plan.deps.(1)).Plan.kind in
          match ka, kb, masked with
          | Plan.K_mat, Plan.K_vec, _ -> if transpose_a then touch id 0
          | Plan.K_mat, Plan.K_mat, None ->
            if transpose_a then touch id 0;
            if transpose_b then touch id 1
          | _, _, _ -> ())
        | _ -> ())
      order;
    let out : (int * int * int, conflict) Hashtbl.t = Hashtbl.create 8 in
    let emit kind x y leaf =
      let a, b = if x <= y then (x, y) else (y, x) in
      if a <> b then begin
        let key = (a, b, leaf) in
        if (not (Hashtbl.mem out key)) && unordered a b then
          Hashtbl.replace out key
            { a; b; leaf; kind; container = Hashtbl.find containers leaf }
      end
    in
    (* write-write pairs first so they win the dedup over read-write *)
    Hashtbl.iter
      (fun leaf ts ->
        IS.iter
          (fun t1 ->
            IS.iter (fun t2 -> if t1 < t2 then emit Write_write t1 t2 leaf) ts)
          ts)
      touchers;
    Hashtbl.iter
      (fun leaf ts ->
        let rs =
          match Hashtbl.find_opt readers leaf with
          | Some s -> s
          | None -> IS.empty
        in
        IS.iter
          (fun t ->
            IS.iter
              (fun r -> if not (IS.mem r ts) then emit Read_write t r leaf)
              rs)
          ts)
      touchers;
    let lst = Hashtbl.fold (fun _ c acc -> c :: acc) out [] in
    List.sort (fun x y -> compare (x.a, x.b, x.leaf) (y.a, y.b, y.leaf)) lst
  end

let enforce ~strategy plan =
  let conflicts = find plan in
  (match strategy with
  | Prebuild ->
    List.iter
      (fun c ->
        match c.container with
        | C.Mat (_, m) -> Gbtl.Smatrix.ensure_csc m
        | C.Vec _ -> ())
      conflicts
  | Edge ->
    (* Direct every added edge from the topo-earlier node to the
       topo-later one (positions taken before any edit), so the set of
       additions is consistent with one linear order and cannot form a
       cycle.  Extra trailing deps are harmless: [execute_node] reads
       its operands positionally from the front. *)
    let pos : (int, int) Hashtbl.t = Hashtbl.create 32 in
    List.iteri (fun i id -> Hashtbl.replace pos id i) (Plan.topo plan);
    List.iter
      (fun c ->
        let p id =
          match Hashtbl.find_opt pos id with Some p -> p | None -> max_int
        in
        let first, second = if p c.a < p c.b then (c.a, c.b) else (c.b, c.a) in
        let n = Plan.node plan second in
        if not (Array.exists (fun d -> d = first) n.Plan.deps) then
          n.Plan.deps <- Array.append n.Plan.deps [| first |])
      conflicts);
  conflicts

let kind_to_string = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"

let describe c =
  Printf.sprintf
    "%s race on the CSC cache of leaf #%d between unordered nodes #%d and #%d \
     (remedy: prebuild the index, or add a dependency edge)"
    (kind_to_string c.kind) c.leaf c.a c.b
