(** Parallel-safety certifier over {!Jit.Par_kernels.Certify.registry}.

    For every output-partitioned kernel twin: chunk write-sets are
    pairwise disjoint, within bounds, and tile [0, n) exactly across a
    grid of sizes and grains.  For every chunk-combined twin: its
    dispatch sites gate on {!Jit.Kernels.exact_assoc} (per the gate
    table), and the judgment agrees with the ground-truth associativity
    of the machine representation.  Run by [ogb lint] and the test
    suite; the seeded-defect tests break a decomposition and a gate
    through the registry's tamper hooks and assert findings appear. *)

type finding = {
  kernel : string;  (** kernel (or judgment) the finding locates in *)
  rule : string;  (** violated rule, e.g. ["chunk disjointness"] *)
  detail : string;
}

val describe : finding -> string

val run : unit -> finding list
(** Empty on a sound kernel set. *)
