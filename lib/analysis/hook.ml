let to_effects_strategy = function
  | Races.Prebuild -> Effects.Prebuild
  | Races.Edge -> Effects.Edge

let effects_stage = function
  | "pre-schedule" | "candidate" | "candidate-final" -> true
  | _ -> false

(* The effect analysis is mandatory but must degrade loudly rather than
   take the pipeline down with it: a hazard verdict propagates (that is
   the analysis doing its job), anything else — including the armed
   ["analysis.effects.exn"] chaos fault — is reported on stderr and
   counted, and the plan runs unchecked. *)
let run_effects fix_races plan ~stage =
  try
    Jit.Jit_stats.record_effects_check ();
    if Fault.fire "analysis.effects.exn" then
      raise (Fault.Injected "analysis.effects.exn");
    if stage = "pre-schedule" then begin
      match fix_races with
      | Some strategy ->
        let found =
          Effects.remedy ~strategy:(to_effects_strategy strategy) plan
        in
        Jit.Jit_stats.record_effects_hazard ~count:(List.length found);
        (match Effects.find plan with
        | [] -> ()
        | remaining ->
          raise (Effects.Effect_hazard { stage; hazards = remaining }))
      | None ->
        (* verify-only mode: surface the count, let the caller decide *)
        Jit.Jit_stats.record_effects_hazard
          ~count:(List.length (Effects.find plan))
    end
    else begin
      (* planner candidate (pre- and post-direction-choice): hazards are
         tolerated when a remedy strategy will run at pre-schedule, and
         reject the candidate otherwise *)
      let found = Effects.find plan in
      Jit.Jit_stats.record_effects_hazard ~count:(List.length found);
      if found <> [] && Option.is_none fix_races then begin
        Jit.Jit_stats.record_effects_rejection ();
        raise (Effects.Effect_hazard { stage; hazards = found })
      end
    end
  with
  | Effects.Effect_hazard _ as e -> raise e
  | e ->
    Jit.Jit_stats.record_effects_degraded ();
    Printf.eprintf
      "ogb: effect analysis degraded at %s (plan runs unchecked): %s\n%!"
      stage (Printexc.to_string e)

let checker fix_races plan ~stage =
  Verify.check ~stage plan;
  if effects_stage stage then run_effects fix_races plan ~stage

let install ?(fix_races = Some Races.Prebuild) () =
  Exec.Verify_hook.install (checker fix_races)

let uninstall () = Exec.Verify_hook.uninstall ()
