let checker fix_races plan ~stage =
  Verify.check ~stage plan;
  if stage = "pre-schedule" then
    Option.iter
      (fun strategy -> ignore (Races.enforce ~strategy plan))
      fix_races

let install ?(fix_races = Some Races.Prebuild) () =
  Exec.Verify_hook.install (checker fix_races)

let uninstall () = Exec.Verify_hook.uninstall ()
