(** Wiring the analyzer into the execution engine.

    {!install} registers a checker with {!Exec.Verify_hook}, so the
    nonblocking pipeline runs {!Verify.check} on every plan at the
    ["lower"] stage, after each fusion pass, at both planner candidate
    stages (["candidate"], ["candidate-final"]), and at
    ["pre-schedule"].

    The {!Effects} stage is mandatory at ["pre-schedule"] and both
    candidate stages.  At ["pre-schedule"] with a remedy strategy
    (default {!Races.Prebuild}) hazards are repaired in place and any
    survivor raises {!Effects.Effect_hazard}; with [fix_races = None]
    hazards are counted ({!Jit.Jit_stats}) but execution proceeds — the
    caller asked to observe, not to fix.  At candidate stages a hazard
    rejects the candidate (counted as an effects rejection) only under
    [fix_races = None]; with a strategy installed the committed plan
    will be remedied before domains start, so remediable candidates stay
    eligible for the schedule search.

    Any non-hazard exception out of the analysis (including the armed
    ["analysis.effects.exn"] fault point) degrades loudly: one stderr
    line, one degraded-counter tick, and the plan runs unchecked. *)

val install : ?fix_races:Races.strategy option -> unit -> unit
(** [fix_races] defaults to [Some Races.Prebuild]; pass [None] to
    verify/observe only (hazards still counted, candidates with hazards
    rejected). *)

val uninstall : unit -> unit
