(** Wiring the analyzer into the execution engine.

    {!install} registers a checker with {!Exec.Verify_hook}, so the
    nonblocking pipeline runs {!Verify.check} on every plan at the
    ["lower"] stage, after each fusion pass, and at ["pre-schedule"];
    at ["pre-schedule"] it additionally applies the race remedy (by
    default {!Races.Prebuild}) so CSC-cache races the scheduler could
    hit are neutralized before domains start. *)

val install : ?fix_races:Races.strategy option -> unit -> unit
(** [fix_races] defaults to [Some Races.Prebuild]; pass [None] to
    verify only (races are still the caller's to find). *)

val uninstall : unit -> unit
