type algo = Pagerank | Bfs | Cc

type verdict =
  | Exact_incremental of string
  | Warm_restart of string
  | Full_recompute of string

let algo_name = function
  | Pagerank -> "pagerank"
  | Bfs -> "bfs"
  | Cc -> "cc"

(* The obligations, stated as the text the doctor/tests surface.  BFS
   levels and CC labels are least fixed points of monotone (value-
   decreasing) operators: edge additions only add constraints, so
   propagation reseeded from the previous fixed point at the new edges'
   endpoints reaches the new least fixed point exactly.  A deletion can
   raise values, which reseeding cannot express.  PageRank's iteration
   is a contraction (damping < 1), so any start vector — in particular
   the previous ranks — converges to the unique fixed point of the
   updated matrix. *)
let certify algo ~additions ~deletions =
  Gbtl.Tile_stats.record_delta_plan ();
  let reject why =
    Gbtl.Tile_stats.record_delta_rejection ();
    Full_recompute why
  in
  if additions < 0 || deletions < 0 then
    reject "malformed batch: negative edge counts"
  else
    match algo with
    | Pagerank ->
      Warm_restart
        "pagerank: iteration is a contraction for damping < 1; warm \
         restart from the previous ranks converges to the unique fixed \
         point of the updated matrix (equal to full recompute within the \
         convergence threshold)"
    | Bfs | Cc ->
      let name = algo_name algo in
      if deletions > 0 then
        reject
          (Printf.sprintf
             "%s: edge deletions can raise levels/labels; reseeded \
              propagation is monotone decreasing and cannot express that \
              — full recompute required"
             name)
      else
        Exact_incremental
          (Printf.sprintf
             "%s: additions only — the operator is monotone decreasing, \
              so propagation reseeded from the previous fixed point at \
              the %d new edges' endpoints reaches the new least fixed \
              point exactly (bit-equal to full recompute)"
             name additions)

let usable = function
  | Exact_incremental _ | Warm_restart _ -> true
  | Full_recompute _ -> false

let explain = function
  | Exact_incremental why -> "exact-incremental: " ^ why
  | Warm_restart why -> "warm-restart: " ^ why
  | Full_recompute why -> "full-recompute: " ^ why
