open Gbtl
module Ks = Jit.Kernel_sig
module K = Jit.Kernels

type status = Already_cached | Compiled | Loaded | Skipped of string

type outcome = { sig_ : Ks.t; status : status }

let status_to_string = function
  | Already_cached -> "already-cached"
  | Compiled -> "compiled"
  | Loaded -> "loaded-from-disk"
  | Skipped reason -> Printf.sprintf "skipped (%s)" reason

(* Stand-in operands.  Sizes are chosen against the runtime dispatch
   thresholds so the kernel keys exactly the requested signature: mxv
   pull needs size >= 32 with fill >= 1/4 under the format layer; a
   4-element, 1-entry vector keeps every other call on its default
   path. *)

let sparse_vec dt = Svector.of_coo dt 4 [ (0, Dtype.one dt) ]

let dense_pair dt n = (Array.make n (Dtype.one dt), Array.make n true)

let small_mat dt = Smatrix.create dt 4 4

let run_recipe (type a) (dt : a Dtype.t) (s : Ks.t) =
  let opr name = List.assoc_opt name s.Ks.operators in
  let fmt role = List.assoc_opt role s.Ks.formats in
  let has_flag f = List.mem f s.Ks.flags in
  let semiring () =
    match opr "add", opr "identity", opr "mul" with
    | Some add_op, Some add_identity, Some mul_op ->
      Ok { Jit.Op_spec.add_op; add_identity; mul_op }
    | _, _, _ -> Error "signature lacks semiring operators"
  in
  let monoid () =
    match opr "op", opr "identity" with
    | Some op, Some identity -> Ok (op, identity)
    | _, _ -> Error "signature lacks monoid operators"
  in
  let unary_chain name =
    match opr name with
    | None -> Error (Printf.sprintf "signature lacks %S operator" name)
    | Some chain ->
      Ok (List.map Jit.Op_spec.unary_of_name (String.split_on_char ';' chain))
  in
  let ( let* ) = Result.bind in
  match s.Ks.op with
  | "mxv" when has_flag "masked_pull" ->
    let* sr = semiring () in
    let vals, occ = dense_pair dt 4 in
    Format_stats.with_enabled true (fun () ->
        ignore
          (K.mxv_pull_masked dt sr
             ~visited:(Array.make 4 false)
             (small_mat dt) (vals, occ)));
    Ok ()
  | "mxv" -> (
    let* sr = semiring () in
    match fmt "a" with
    | Some "csc" ->
      if not (has_flag "transpose_a") then
        Error "csc mxv signature without transpose_a"
      else begin
        (* pull variant: transposed, format layer on, filled-in operand *)
        let m = Smatrix.create dt 32 32 in
        let u =
          Svector.of_coo dt 32 (List.init 32 (fun i -> (i, Dtype.one dt)))
        in
        Format_stats.with_enabled true (fun () ->
            ignore (K.mxv dt sr ~transpose:true m u));
        Ok ()
      end
    | Some other -> Error (Printf.sprintf "unknown mxv matrix format %S" other)
    | None ->
      ignore (K.mxv dt sr ~transpose:(has_flag "transpose_a") (small_mat dt)
                (sparse_vec dt));
      Ok ())
  | "vxm" -> (
    let* sr = semiring () in
    match fmt "u", fmt "a" with
    | None, None ->
      ignore (K.vxm dt sr ~transpose:(has_flag "transpose_a") (sparse_vec dt)
                (small_mat dt));
      Ok ()
    | Some "dense", None ->
      ignore (K.vxm_dense dt sr (dense_pair dt 4) (small_mat dt));
      Ok ()
    | Some "dense", Some "csc" ->
      Format_stats.with_enabled true (fun () ->
          ignore (K.vxm_pull_dense dt sr (dense_pair dt 4) (small_mat dt)));
      Ok ()
    | _, _ -> Error "unknown vxm format combination"
  )
  | "mxm" ->
    let* sr = semiring () in
    let a = small_mat dt and b = small_mat dt in
    let mask =
      if has_flag "mask" then
        Mask.mmask ~complemented:(has_flag "mask_complement") (small_mat dt)
      else Mask.No_mmask
    in
    ignore
      (K.mxm dt sr
         ~transpose_a:(has_flag "transpose_a")
         ~transpose_b:(has_flag "transpose_b")
         ~mask a b);
    Ok ()
  | ("ewise_add_v" | "ewise_mult_v") as kn -> (
    let kind = if kn = "ewise_add_v" then `Add else `Mult in
    match opr "op" with
    | None -> Error "signature lacks the binary operator"
    | Some op ->
      (match fmt "u" with
      | Some "dense" ->
        ignore (K.ewise_v_dense kind dt ~op (dense_pair dt 4) (dense_pair dt 4))
      | _ -> ignore (K.ewise_v kind dt ~op (sparse_vec dt) (sparse_vec dt)));
      Ok ())
  | ("ewise_add_fused_v" | "ewise_mult_fused_v") as kn -> (
    let kind = if kn = "ewise_add_fused_v" then `Add else `Mult in
    match opr "op" with
    | None -> Error "signature lacks the binary operator"
    | Some op ->
      let* chain = unary_chain "chain" in
      ignore (K.ewise_fused_v kind dt ~op ~chain (sparse_vec dt) (sparse_vec dt));
      Ok ())
  | "apply_chain_v" ->
    let* chain = unary_chain "chain" in
    ignore (K.apply_chain_v dt ~chain (sparse_vec dt));
    Ok ()
  | "ewise_mult_reduce_v" -> (
    match opr "op", opr "monoid", opr "identity" with
    | Some op, Some monoid_op, Some identity ->
      ignore
        (K.ewise_mult_reduce_v dt ~op ~monoid_op ~identity (sparse_vec dt)
           (sparse_vec dt));
      Ok ()
    | _, _, _ -> Error "signature lacks mult-reduce operators")
  | "apply_v" -> (
    match opr "f" with
    | None -> Error "signature lacks the unary operator"
    | Some f ->
      let f = Jit.Op_spec.unary_of_name f in
      (match fmt "u" with
      | Some "dense" -> ignore (K.apply_v_dense dt f (dense_pair dt 4))
      | _ -> ignore (K.apply_v dt f (sparse_vec dt)));
      Ok ())
  | "apply_m" -> (
    match opr "f" with
    | None -> Error "signature lacks the unary operator"
    | Some f ->
      ignore
        (K.apply_m dt (Jit.Op_spec.unary_of_name f)
           ~transpose:(has_flag "transpose_a")
           (small_mat dt));
      Ok ())
  | "reduce_rows" ->
    let* op, identity = monoid () in
    ignore
      (K.reduce_rows dt ~op ~identity
         ~transpose:(has_flag "transpose_a")
         (small_mat dt));
    Ok ()
  | "reduce_v_scalar" -> (
    let* op, identity = monoid () in
    (match fmt "u" with
    | Some "dense" ->
      ignore (K.reduce_v_scalar_dense dt ~op ~identity (dense_pair dt 4))
    | _ -> ignore (K.reduce_v_scalar dt ~op ~identity (sparse_vec dt)));
    Ok ())
  | "reduce_m_scalar" ->
    let* op, identity = monoid () in
    ignore (K.reduce_m_scalar dt ~op ~identity (small_mat dt));
    Ok ()
  | "transpose" ->
    ignore (K.transpose_m dt (small_mat dt));
    Ok ()
  | op -> Error (Printf.sprintf "no warm-up recipe for %S" op)

let invoke (s : Ks.t) =
  match List.assoc_opt "T" s.Ks.dtypes with
  | None -> Error "signature has no dtype role T"
  | Some dtn -> (
    match Dtype.of_name dtn with
    | exception _ -> Error (Printf.sprintf "unknown dtype %S" dtn)
    | Dtype.P dt -> (
      try run_recipe dt s
      with e -> Error (Printexc.to_string e)))

let warm sigs =
  List.map
    (fun s ->
      Jit.Jit_stats.record_warm_request ();
      if Jit.Dispatch.cached s then { sig_ = s; status = Already_cached }
      else begin
        let before = Jit.Jit_stats.snapshot () in
        match invoke s with
        | Error msg -> { sig_ = s; status = Skipped msg }
        | Ok () ->
          if not (Jit.Dispatch.cached s) then
            { sig_ = s;
              status = Skipped "recipe dispatched a different signature" }
          else begin
            let after = Jit.Jit_stats.snapshot () in
            if after.Jit.Jit_stats.compiles > before.Jit.Jit_stats.compiles
            then begin
              Jit.Jit_stats.record_warm_compile ();
              { sig_ = s; status = Compiled }
            end
            else if
              after.Jit.Jit_stats.disk_hits > before.Jit.Jit_stats.disk_hits
            then { sig_ = s; status = Loaded }
            else { sig_ = s; status = Compiled }
          end
      end)
    sigs
