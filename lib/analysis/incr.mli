(** Delta-recompute certifier — the Verify-stage extension for the
    incremental layer.  Before a delta plan (re-running an algorithm
    after an edge batch by reusing the previous result) is allowed to
    execute, this module proves it equivalent to a full recompute, or
    rejects it so the caller falls back to the full run.

    The proofs are monotonicity arguments:
    - {b BFS} (levels) and {b CC} (min-labels) are least fixed points of
      monotone operators.  Adding edges only adds constraints that can
      {e lower} a level/label; re-running the propagation seeded from
      the previous fixed point plus the frontier affected by the new
      edges reaches exactly the new least fixed point.  Deleting an edge
      can raise values, which reseeding cannot express — rejected.
    - {b PageRank} is a contraction for damping < 1: from {e any}
      starting vector (in particular the previous ranks) the iteration
      converges to the unique fixed point of the updated matrix; a delta
      run is a warm restart, equal to the full recompute within the
      convergence threshold (not bitwise).

    Certified plans and rejections are counted in
    {!Gbtl.Tile_stats}. *)

type algo = Pagerank | Bfs | Cc

type verdict =
  | Exact_incremental of string
      (** provably the same fixed point, bit-exact; the payload is the
          proof sketch *)
  | Warm_restart of string
      (** same unique fixed point within the convergence threshold *)
  | Full_recompute of string
      (** rejected; the payload says which obligation failed *)

val certify : algo -> additions:int -> deletions:int -> verdict
(** Certify a delta plan for [algo] over a batch with the given edge
    addition/deletion counts.  Counts one delta plan; a
    [Full_recompute] verdict also counts one rejection. *)

val usable : verdict -> bool
(** Whether the delta plan may run ([Full_recompute] may not). *)

val explain : verdict -> string
val algo_name : algo -> string
