open Minivm
open Minivm.Ast
module SS = Set.Make (String)

type what = Unbound | Unknown_method | Unknown_attr | Arity

type finding = { what : what; enclosing : string option; message : string }

let default_env () =
  let env = Env.create () in
  Builtins.install env;
  Ogb.Vm_bridge.install env;
  env

(* -- registry ------------------------------------------------------- *)

(* Interpreter builtins with fixed arities; [print] and the bare [list]
   constructor are variadic enough to skip. *)
let interp_builtin_arities =
  [ ("len", [ 1 ]); ("range", [ 1; 2 ]); ("abs", [ 1 ]); ("min", [ 2 ]);
    ("max", [ 2 ]); ("float", [ 1 ]); ("int", [ 1 ]); ("str", [ 1 ]);
    ("list", [ 0; 1 ]) ]

let builtin_arities = Ogb.Vm_bridge.builtin_arities @ interp_builtin_arities

(* Native list/dict methods from the interpreter, merged with the
   foreign container methods from the bridge.  Duplicated names (get,
   set) carry the same arities on both sides. *)
let native_methods =
  [ ("append", [ 1 ]); ("pop", [ 0 ]); ("get", [ 1 ]); ("set", [ 2 ]) ]

let method_table =
  List.fold_left
    (fun acc (name, arities) ->
      let prev = try List.assoc name acc with Not_found -> [] in
      (name, List.sort_uniq compare (arities @ prev))
      :: List.remove_assoc name acc)
    [] (Ogb.Vm_bridge.known_methods @ native_methods)

let known_attrs = "length" :: Ogb.Vm_bridge.known_attrs

(* -- locals collection ---------------------------------------------- *)

(* Python-style function-wide locals: every name assigned anywhere in
   the function body (including inside branches and loops) is local for
   the whole body, so a read before the branch executes is not flagged.
   Nested [Def] bodies are their own scopes and are not descended
   into. *)
let rec block_locals acc block = List.fold_left stmt_locals acc block

and stmt_locals acc = function
  | Assign (name, _) -> SS.add name acc
  | For (var, _, body) -> block_locals (SS.add var acc) body
  | If (_, t, f) -> block_locals (block_locals acc t) f
  | While (_, body) | With (_, body) -> block_locals acc body
  | Def (name, _, _) -> SS.add name acc
  | ExprStmt _ | SetIndex _ | SetAttr _ | Return _ | Break | Continue | Pass ->
    acc

(* -- the walk ------------------------------------------------------- *)

type ctx = {
  env : Env.t;
  scopes : SS.t list;  (** innermost first *)
  enclosing : string option;
  def_arities : (string, int) Hashtbl.t;
  findings : finding list ref;
}

let emit ctx what message =
  ctx.findings := { what; enclosing = ctx.enclosing; message } :: !(ctx.findings)

let bound ctx name =
  List.exists (SS.mem name) ctx.scopes
  || Env.mem ctx.env name
  || Hashtbl.mem ctx.def_arities name

let rec collect_defs tbl block =
  List.iter
    (function
      | Def (name, params, body) ->
        Hashtbl.replace tbl name (List.length params);
        collect_defs tbl body
      | If (_, t, f) ->
        collect_defs tbl t;
        collect_defs tbl f
      | While (_, body) | With (_, body) | For (_, _, body) ->
        collect_defs tbl body
      | ExprStmt _ | Assign _ | SetIndex _ | SetAttr _ | Return _ | Break
      | Continue | Pass ->
        ())
    block

let check_call_arity ctx callee nargs =
  match callee with
  | Var name -> (
    match Hashtbl.find_opt ctx.def_arities name with
    | Some arity ->
      if nargs <> arity then
        emit ctx Arity
          (Printf.sprintf "%s() takes %d argument%s, called with %d" name
             arity
             (if arity = 1 then "" else "s")
             nargs)
    | None -> (
      match List.assoc_opt name builtin_arities with
      | Some arities ->
        if not (List.mem nargs arities) then
          emit ctx Arity
            (Printf.sprintf "%s() does not accept %d argument%s (accepts %s)"
               name nargs
               (if nargs = 1 then "" else "s")
               (String.concat " or " (List.map string_of_int arities)))
      | None -> ()))
  | _ -> ()

let rec walk_expr ctx = function
  | Const _ -> ()
  | Var name ->
    if not (bound ctx name) then
      emit ctx Unbound (Vm_error.message ~name ~enclosing:ctx.enclosing)
  | Unary (_, e) -> walk_expr ctx e
  | Binary (_, a, b) ->
    walk_expr ctx a;
    walk_expr ctx b
  | Call (callee, args) ->
    walk_expr ctx callee;
    List.iter (walk_expr ctx) args;
    check_call_arity ctx callee (List.length args)
  | Method (recv, name, args) ->
    walk_expr ctx recv;
    List.iter (walk_expr ctx) args;
    (match List.assoc_opt name method_table with
    | Some arities ->
      if not (List.mem (List.length args) arities) then
        emit ctx Arity
          (Printf.sprintf ".%s() does not accept %d argument%s (accepts %s)"
             name (List.length args)
             (if List.length args = 1 then "" else "s")
             (String.concat " or " (List.map string_of_int arities)))
    | None ->
      emit ctx Unknown_method (Printf.sprintf "unknown method .%s()" name))
  | Attr (recv, name) ->
    walk_expr ctx recv;
    if not (List.mem name known_attrs) then
      emit ctx Unknown_attr (Printf.sprintf "unknown attribute .%s" name)
  | Index (a, b) ->
    walk_expr ctx a;
    walk_expr ctx b
  | ListLit items -> List.iter (walk_expr ctx) items
  | Lambda (params, body) ->
    let locals = block_locals (SS.of_list params) body in
    walk_block { ctx with scopes = locals :: ctx.scopes;
                 enclosing = Some "<lambda>" }
      body

and walk_stmt ctx = function
  | ExprStmt e | Assign (_, e) | Return e -> walk_expr ctx e
  | SetIndex (t, k, v) ->
    walk_expr ctx t;
    walk_expr ctx k;
    walk_expr ctx v
  | SetAttr (t, _, v) ->
    walk_expr ctx t;
    walk_expr ctx v
  | If (c, t, f) ->
    walk_expr ctx c;
    walk_block ctx t;
    walk_block ctx f
  | While (c, body) ->
    walk_expr ctx c;
    walk_block ctx body
  | For (_, iter, body) ->
    walk_expr ctx iter;
    walk_block ctx body
  | With (entries, body) ->
    List.iter (walk_expr ctx) entries;
    walk_block ctx body
  | Def (name, params, body) ->
    (* closures chain to their defining scope, so outer names stay
       visible — same resolution the interpreter performs *)
    let locals = block_locals (SS.of_list params) body in
    walk_block
      { ctx with scopes = locals :: ctx.scopes; enclosing = Some name }
      body
  | Break | Continue | Pass -> ()

and walk_block ctx block = List.iter (walk_stmt ctx) block

let check ?env block =
  let env = match env with Some e -> e | None -> default_env () in
  let def_arities = Hashtbl.create 8 in
  collect_defs def_arities block;
  let findings = ref [] in
  let ctx =
    { env;
      scopes = [ block_locals SS.empty block ];
      enclosing = None;
      def_arities;
      findings }
  in
  walk_block ctx block;
  List.rev !findings

let what_to_string = function
  | Unbound -> "unbound-variable"
  | Unknown_method -> "unknown-method"
  | Unknown_attr -> "unknown-attribute"
  | Arity -> "arity"

let describe f =
  Printf.sprintf "[%s]%s %s" (what_to_string f.what)
    (match f.enclosing with
    | Some fn -> Printf.sprintf " in %s" fn
    | None -> "")
    f.message
