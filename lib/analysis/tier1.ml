open Gbtl
module C = Ogb.Container
open Vm_abstract

type entry = {
  name : string;
  program : Minivm.Ast.block;
  entrypoint : string;
  args : int -> Vm_abstract.aval list;
}

(* Stand-in arguments mirror each algorithm's [vm_loops] driver:
   container dtypes, seed entries, and scalar defaults must match for
   the captured operator names (bound constants in particular) to render
   identically. *)

let bfs =
  { name = "bfs";
    program = Algorithms.Bfs.vm_program;
    entrypoint = "bfs";
    args =
      (fun n ->
        [ VCont (C.matrix_empty ~dtype:(Dtype.P Dtype.Bool) n n);
          VCont
            (C.vector_coo ~dtype:(Dtype.P Dtype.Bool) ~size:n [ (0, 1.0) ]);
          VCont (C.vector_empty ~dtype:(Dtype.P Dtype.Int64) n) ]) }

let pagerank =
  { name = "pagerank";
    program = Algorithms.Pagerank.vm_program;
    entrypoint = "page_rank";
    args =
      (fun n ->
        let f64 = Dtype.P Dtype.FP64 in
        [ VCont (C.matrix_empty ~dtype:f64 n n);
          VCont (C.matrix_empty ~dtype:f64 n n);
          VCont (C.vector_empty ~dtype:f64 n);
          VCont (C.vector_empty ~dtype:f64 n);
          VCont (C.vector_empty ~dtype:f64 n);
          VNum (Some 0.85);
          VNum (Some 1.e-5);
          VNum (Some 100000.);
          VNum (Some (float_of_int n)) ]) }

let sssp =
  { name = "sssp";
    program = Algorithms.Sssp.vm_program;
    entrypoint = "sssp";
    args =
      (fun n ->
        [ VCont (C.matrix_empty ~dtype:(Dtype.P Dtype.FP64) n n);
          VCont (C.vector_coo ~size:n [ (0, 0.0) ]) ]) }

let triangle =
  { name = "triangle";
    program = Algorithms.Triangle.vm_program;
    entrypoint = "triangle_count";
    args =
      (fun n ->
        [ VCont (C.matrix_empty ~dtype:(Dtype.P Dtype.Int64) n n);
          VCont (C.matrix_empty ~dtype:(Dtype.P Dtype.Int64) n n) ]) }

let cc =
  { name = "cc";
    program = Algorithms.Connected_components.vm_program;
    entrypoint = "cc";
    args =
      (fun n ->
        [ VCont (C.matrix_empty ~dtype:(Dtype.P Dtype.Bool) n n);
          VCont
            (C.vector_coo ~dtype:(Dtype.P Dtype.Int64) ~size:n
               (List.init n (fun v -> (v, float_of_int v)))) ]) }

let labelprop =
  { name = "labelprop";
    program = Algorithms.Labelprop.vm_program;
    entrypoint = "labelprop";
    args =
      (fun n ->
        let i64 = Dtype.P Dtype.Int64 in
        [ VCont (C.matrix_empty ~dtype:i64 n n);
          VCont (Algorithms.Labelprop.tie_break_diagonal n);
          VCont (Algorithms.Labelprop.seed_labels n);
          VNum (Some (float_of_int Algorithms.Labelprop.default_rounds)) ]) }

let ktruss =
  { name = "ktruss";
    program = Algorithms.Ktruss.vm_program;
    entrypoint = "ktruss";
    args =
      (fun n ->
        let i64 = Dtype.P Dtype.Int64 in
        [ VCont (C.matrix_empty ~dtype:i64 n n);
          VCont (C.matrix_empty ~dtype:i64 n n);
          VNum (Some 1.0);
          VNum (Some (float_of_int Algorithms.Ktruss.default_rounds)) ]) }

let bc =
  { name = "bc";
    program = Algorithms.Bc.vm_program;
    entrypoint = "bc";
    args =
      (fun n ->
        let f64 = Dtype.P Dtype.FP64 in
        let i64 = Dtype.P Dtype.Int64 in
        [ VCont (C.matrix_empty ~dtype:f64 n n);
          VCont (C.vector_coo ~dtype:f64 ~size:n [ (0, 1.0) ]);
          VCont (C.vector_coo ~dtype:f64 ~size:n [ (0, 1.0) ]);
          VCont (C.vector_empty ~dtype:i64 n);
          VCont (C.vector_dense ~dtype:f64 (List.init n (fun _ -> 1.0)));
          VCont (C.vector_empty ~dtype:f64 n);
          VCont (C.vector_empty ~dtype:f64 n);
          VCont (C.vector_empty ~dtype:f64 n);
          VCont (C.vector_empty ~dtype:i64 n);
          VCont (C.vector_empty ~dtype:i64 n) ]) }

let all = [ bfs; pagerank; sssp; triangle; cc; labelprop; ktruss; bc ]

let find name = List.find_opt (fun e -> e.name = name) all

let signatures e ~n =
  Vm_abstract.signatures e.program ~entry:e.entrypoint ~args:(e.args n)
