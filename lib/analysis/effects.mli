(** Static effect system over {!Exec.Plan} DAGs: per-node read/write
    footprints over every location class execution can touch, and the
    scheduler hazards that follow from footprint overlap between
    unordered nodes.

    Two location classes are mutable behind the scheduler's back, both
    lazily converted storage sides:

    - a matrix's CSC cache, built on first transposed dispatch
      ([Csc_cache] — the special case the old [Races] pass knew);
    - a vector's sparse/dense representation, flipped in place by the
      kernel array ABI ([Rep_switch] — [Svector.unsafe_indices]
      sparsifies a dense operand destructively, so two concurrent
      kernel consumers of one physical dense vector race).

    Locations are canonical by {e physical} backing storage: distinct
    containers (or a vector [Transpose], the identity on its container)
    wrapping one [Svector]/[Smatrix] collapse to a single location, so
    aliased operands that CSE cannot merge are still analyzed as one. *)

type access = Read | Write

type resource =
  | Mat_entries of int  (** CSR entries of the matrix canonical at id *)
  | Mat_csc of int  (** its lazily built CSC side-cache *)
  | Vec_entries of int  (** stored entries of the vector canonical at id *)
  | Vec_rep of int  (** its sparse/dense representation switch *)
  | Node_out of int  (** a node's own (single-writer) result slot *)
  | Accum_sink  (** the assignment sink, written after the plan runs *)
  | Op_context  (** operator-context stack (read-only during execution) *)

type footprint = { node : int; effects : (resource * access) list }

type kind = Write_write | Read_write

type cls = Csc_cache | Rep_switch

type hazard = {
  a : int;  (** the topo-smaller endpoint *)
  b : int;
  owner : int;  (** canonical owner node of the contended location *)
  cls : cls;
  kind : kind;
  container : Ogb.Container.t option;
      (** the physical container when the owner is a leaf (remediable in
          place); [None] for intermediates (edge remedy only) *)
}

type strategy = Prebuild | Edge

exception Effect_hazard of { stage : string; hazards : hazard list }
(** Raised by the analysis hook when hazards survive remediation (or
    when rejection is requested at a planner candidate stage). *)

val footprints : ?assume_formats:bool -> Exec.Plan.t -> footprint list
(** Per-node effect lists in topological order.  With [assume_formats]
    the format layer is treated as on regardless of the runtime toggle
    (the planner analyzes the plan it would run, not the current
    environment). *)

val find : ?assume_formats:bool -> Exec.Plan.t -> hazard list
(** Hazards between scheduler-unordered node pairs, write-write first
    per location, sorted by [(a, b, owner)].  CSC hazards require
    format-aware dispatch ([assume_formats] or the runtime toggle);
    dense-operand sparsification does not — the array ABI flips a dense
    vector regardless. *)

val remedy : strategy:strategy -> Exec.Plan.t -> hazard list
(** Find and repair: [Prebuild] performs the lazy conversion eagerly
    ([ensure_csc] / [sparsify] — value-preserving) and falls back to a
    dependency edge for intermediates; [Edge] serializes each pair.
    Returns the hazards that were found (before repair). *)

val describe : hazard -> string

val report : ?assume_formats:bool -> Exec.Plan.t -> string
(** Per-node footprint listing ([R{...} W{...}] per node, topo order)
    for [ogb analyze --effects]. *)

val message : exn -> string option
(** [Some rendered] for {!Effect_hazard}, [None] otherwise. *)
