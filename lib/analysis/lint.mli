(** The analysis side of [ogb lint]: effect-system self-tests over
    seeded fixture plans (a CSC-cache hazard, a representation hazard, an
    aliased-operand hazard, and a hazard-free control — all lowered and
    planned by the real pipeline) plus the {!Certify} parallel-kernel
    certification.  The CLI aggregates these with the daemon's
    {!Server.Audit} and exits nonzero on any finding. *)

type finding = { area : string; detail : string }

val describe : finding -> string

val apply_env_tamper : unit -> unit
(** Honor [OGB_CERT_TAMPER] (["chunks=<kernel>"] / ["assoc"], comma
    separated): seed a broken chunk decomposition or a widened
    associativity gate before the checks run — the seeded-defect
    regression tests assert lint catches both. *)

val run : unit -> finding list
(** Empty on a healthy tree. *)
