(** Abstract interpreter over MiniVM algorithm encodings.

    Runs a program on an abstract domain — containers are stand-ins
    with real dimensions and dtypes, numbers fold when every input is
    known, loops execute a bounded number of times, both branches of
    every [if] execute — and records each JIT kernel signature the
    concrete blocking evaluator would dispatch at the force points
    (subscript assignment, [update], [reduce]).  The emitted set is a
    superset of what one concrete run dispatches (both directions of a
    runtime-dispatched kernel are included), which is exactly what
    ahead-of-time warm-up ({!Warmup}) needs: compiling every signature
    in the set leaves zero first-iteration compiles.

    [with] blocks push their {e real} operator contexts, so deferred
    expressions capture the same semirings/binops/unaries the VM run
    would. *)

type aval =
  | VUnknown
  | VNil
  | VBool of bool option
  | VNum of float option
  | VStr of string option
  | VList of aval array
  | VCont of Ogb.Container.t
      (** stand-in container carrying real dims/dtype *)
  | VExpr of Ogb.Expr.t
  | VOp of Ogb.Context.entry
  | VMask of Ogb.Ops.mask
  | VAllIdx
  | VView of Ogb.Container.t * Ogb.Ops.mask option
  | VClosure of string * string list * Minivm.Ast.block
  | VBuiltin of string

val signatures :
  ?env:Minivm.Env.t ->
  Minivm.Ast.block ->
  entry:string ->
  args:aval list ->
  Jit.Kernel_sig.t list
(** Execute the program top level (binding its [def]s), then call
    [entry] with [args]; returns the reachable kernel signatures in
    first-emission order, deduplicated. *)

val expr_signatures :
  ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> Jit.Kernel_sig.t list
(** Signatures the blocking evaluator dispatches forcing one deferred
    expression (mask semantics as in {!Ogb.Expr.force}). *)

val reduce_signatures :
  op:string -> identity:string -> Ogb.Expr.t -> Jit.Kernel_sig.t list
(** Signatures for a terminal scalar reduction of [e] under the given
    monoid. *)
