(** Alias/race detection over plan DAGs.

    The domain scheduler runs any two nodes concurrently when neither is
    a DAG ancestor of the other.  The only shared mutable state plan
    execution touches is a leaf matrix's lazily built CSC index
    ({!Gbtl.Smatrix.get_csc} caches unsynchronized): a transposed
    Mat×Vec product may build it mid-flight (pull dispatch), and an
    unmasked Mat×Mat with a transposed operand reads through a CSC
    transpose view.  Two unordered nodes hitting the same leaf matrix —
    one of them a potential CSC builder — race on that cache. *)

type kind = Write_write | Read_write

type conflict = {
  a : int;  (** earlier node id (canonicalized [a <= b]) *)
  b : int;
  leaf : int;  (** the shared leaf node both sides reach *)
  kind : kind;
  container : Ogb.Container.t;
}

type strategy =
  | Prebuild  (** build the CSC index eagerly, removing the write *)
  | Edge  (** add a dependency edge serializing the two nodes *)

val find : ?assume_formats:bool -> Exec.Plan.t -> conflict list
(** Conflicts between scheduler-concurrent node pairs.  Returns [[]]
    when format-aware dispatch is disabled (no CSC builds happen) unless
    [assume_formats] forces the analysis. *)

val enforce : strategy:strategy -> Exec.Plan.t -> conflict list
(** {!find}, then apply the remedy to each conflict; returns what was
    found (re-running {!find} afterwards yields [[]]). *)

val describe : conflict -> string
