(** Registry of the tier-1 MiniVM algorithm encodings with abstract
    stand-in arguments mirroring each algorithm's [vm_loops] driver
    (same container dtypes and scalar constants), so
    {!Vm_abstract.signatures} reaches exactly the kernels a real run
    dispatches. *)

type entry = {
  name : string;
  program : Minivm.Ast.block;
  entrypoint : string;
  args : int -> Vm_abstract.aval list;
      (** stand-in arguments for an [n]-vertex graph *)
}

val all : entry list
val find : string -> entry option

val signatures : entry -> n:int -> Jit.Kernel_sig.t list
(** Abstractly interpret the encoding for an [n]-vertex graph. *)
