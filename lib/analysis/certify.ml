(* Parallel-safety certifier for the pool-chunked kernel twins.

   Every kernel in [Jit.Par_kernels] publishes its decomposition as data
   ([Certify.registry]); this module checks, statically, the two
   arguments that make each one bit-identical to its sequential twin:

   - output-partitioned kernels: the chunk write-sets are pairwise
     disjoint and tile the index space [0, n) exactly, for a grid of
     sizes and grains (including n = 0, n < grain, n = k*grain, and
     n = k*grain + 1 edges);
   - chunk-combined kernels: every dispatch site gates on
     [Kernels.exact_assoc] (the registry's gate table says so), and the
     judgment itself matches the ground truth — regrouping a left fold
     is bit-identical exactly for the monoids the table licenses.

   Findings carry the kernel name and the violated rule, so a broken
   decomposition or a widened gate is located, not just detected. *)

module PK = Jit.Par_kernels.Certify

type finding = { kernel : string; rule : string; detail : string }

let describe f =
  Printf.sprintf "par kernel %s: %s: %s" f.kernel f.rule f.detail

(* size/grain grid: empty, singleton, sub-grain, exact multiples, off-by-
   one around chunk boundaries, and large-n/large-grain combinations *)
let samples =
  [ (0, 16); (1, 1); (1, 16); (5, 2); (7, 3); (16, 16); (17, 16); (31, 16);
    (64, 16); (100, 1); (1000, 64); (1000, 1024); (33, 0) ]

let check_chunks (d : PK.descriptor) =
  List.concat_map
    (fun (n, grain) ->
      let where rule detail =
        { kernel = d.PK.name;
          rule;
          detail = Printf.sprintf "%s (n=%d grain=%d)" detail n grain }
      in
      let chunks = d.PK.chunks ~n ~grain in
      let findings = ref [] in
      let expected = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          if lo > hi || lo < 0 || hi > n then
            findings :=
              where "chunk bounds"
                (Printf.sprintf "chunk [%d,%d) outside [0,%d)" lo hi n)
              :: !findings
          else if lo < !expected then
            findings :=
              where "chunk disjointness"
                (Printf.sprintf "chunk [%d,%d) overlaps indices below %d" lo hi
                   !expected)
              :: !findings
          else if lo > !expected then
            findings :=
              where "index coverage"
                (Printf.sprintf "indices [%d,%d) belong to no chunk" !expected
                   lo)
              :: !findings;
          expected := max !expected hi)
        chunks;
      if !expected < n then
        findings :=
          where "index coverage"
            (Printf.sprintf "indices [%d,%d) belong to no chunk" !expected n)
          :: !findings;
      List.rev !findings)
    samples

(* ground truth for the associativity judgment: machine-exact monoids
   regroup freely; float ⊕/⊗ do not *)
let assoc_probes =
  [ ("double", "Plus", false); ("float", "Plus", false);
    ("double", "Times", false); ("int64_t", "Plus", true);
    ("int32_t", "Times", true); ("uint64_t", "Plus", true);
    ("double", "Min", true); ("double", "Max", true);
    ("bool", "LogicalOr", true); ("bool", "LogicalAnd", true);
    ("double", "Div", false) ]

let check_assoc_judgment () =
  List.filter_map
    (fun (dtype, op, expect) ->
      let got = Jit.Kernels.exact_assoc ~dtype ~op in
      if got = expect then None
      else
        Some
          { kernel = "exact_assoc";
            rule = "associativity licence";
            detail =
              Printf.sprintf "(%s, %s) judged %b, ground truth %b" dtype op
                got expect })
    assoc_probes

let check_gates (ds : PK.descriptor list) =
  let gate name = List.assoc_opt name Jit.Kernels.par_gates in
  let from_registry =
    List.filter_map
      (fun (d : PK.descriptor) ->
        match d.PK.decomposition, gate d.PK.name with
        | _, None ->
          Some
            { kernel = d.PK.name;
              rule = "gate table";
              detail = "kernel has no dispatch-gate entry" }
        | PK.Chunk_combined, Some Jit.Kernels.Ungated ->
          Some
            { kernel = d.PK.name;
              rule = "exact_assoc gate";
              detail =
                "chunk-combined kernel dispatches without the exact_assoc \
                 licence" }
        | PK.Chunk_combined, Some Jit.Kernels.Gated_exact_assoc
        | PK.Output_partitioned, Some _ -> None)
      ds
  in
  let from_table =
    List.filter_map
      (fun (name, _) ->
        if List.exists (fun (d : PK.descriptor) -> d.PK.name = name) ds then
          None
        else
          Some
            { kernel = name;
              rule = "gate table";
              detail = "gate entry names no registered kernel" })
      Jit.Kernels.par_gates
  in
  from_registry @ from_table

let run () =
  let ds = PK.registry () in
  List.concat_map check_chunks ds @ check_gates ds @ check_assoc_judgment ()
