(* [ogb lint]'s analysis side: prove the effect system still catches the
   hazards it exists for (self-tests over seeded fixture plans), then
   certify the parallel kernel decompositions ({!Certify}).

   The self-tests run the real pipeline — expressions lowered, rewritten
   and planned by [Exec.plan_force] — so a rewrite or planner change
   that hides a hazard class from the analysis fails lint, not a user.

   [OGB_CERT_TAMPER] seeds defects for the CI regression tests:
   ["chunks=<kernel>"] hands the certifier an overlapping chunk
   decomposition for one kernel, ["assoc"] widens the exact_assoc gate
   to every operator.  Both must turn lint's exit nonzero. *)

type finding = { area : string; detail : string }

let describe f = Printf.sprintf "%s: %s" f.area f.detail

let apply_env_tamper () =
  match Sys.getenv_opt "OGB_CERT_TAMPER" with
  | None | Some "" -> ()
  | Some spec ->
    List.iter
      (fun item ->
        match String.index_opt item '=' with
        | Some i when String.sub item 0 i = "chunks" ->
          let victim =
            String.sub item (i + 1) (String.length item - i - 1)
          in
          Jit.Par_kernels.Certify.set_tamper
            (Some
               (fun d ->
                 if d.Jit.Par_kernels.Certify.name = victim then
                   { d with
                     Jit.Par_kernels.Certify.chunks =
                       (fun ~n ~grain ->
                         (* widen every chunk one slot to the right: the
                            classic off-by-one that makes neighbours
                            share an output index *)
                         Array.map
                           (fun (lo, hi) -> (lo, min n (hi + 1)))
                           (Jit.Par_kernels.Certify.pool_chunks ~n ~grain))
                   }
                 else d))
        | _ when item = "assoc" ->
          Jit.Kernels.set_assoc_override
            (Some (fun ~dtype:_ ~op:_ -> true))
        | _ ->
          Printf.eprintf "ogb lint: unknown OGB_CERT_TAMPER item %S\n%!" item)
      (String.split_on_char ',' spec)

let effects_self_tests () =
  Gbtl.Format_stats.with_enabled true (fun () ->
      let fs = ref [] in
      let add detail = fs := { area = "effects"; detail } :: !fs in
      let mat n =
        Ogb.Container.matrix_dense
          (List.init n (fun i ->
               List.init n (fun j -> if i = j then 0.0 else 1.0)))
      in
      let vec n x = Ogb.Container.vector_dense (List.init n (fun _ -> x)) in
      let open Ogb.Ops.Infix in
      let with_arith f =
        Ogb.Context.with_ops
          [ Ogb.Context.semiring "Arithmetic"; Ogb.Context.binary "Plus" ]
          f
      in
      let find = Effects.find ~assume_formats:true in
      (* lower + rewrite without the planner, so the fixtures' layouts
         come deterministically from the heuristic *)
      let plan_of e =
        let p = Exec.Plan.of_expr e in
        Exec.Rewrite.run p;
        p
      in
      (* seeded CSC hazard: two unordered transposed pull products over
         one uncached matrix (filled-in 64-vectors select pull) *)
      let a = mat 64 and u = vec 64 1.0 and v = vec 64 2.0 in
      let plan =
        plan_of (with_arith (fun () -> (tr !!a @. !!u) +: (tr !!a @. !!v)))
      in
      if
        not
          (List.exists
             (fun h -> h.Effects.cls = Effects.Csc_cache)
             (find plan))
      then add "seeded CSC-cache hazard (y = A.T@u + A.T@v) was not flagged";
      ignore (Effects.remedy ~strategy:Effects.Prebuild plan);
      (match find plan with
      | [] -> ()
      | l ->
        add
          (Printf.sprintf "%d hazard(s) survive the Prebuild remedy"
             (List.length l)));
      (* a hazard-free plan must pass *)
      let clean =
        plan_of (with_arith (fun () -> !!(mat 8) @. !!(vec 8 1.0)))
      in
      (match find clean with
      | [] -> ()
      | l ->
        add
          (Printf.sprintf "false positive: %s" (Effects.describe (List.hd l))));
      (* seeded representation hazard: a dense vector with two unordered
         kernel consumers (the array ABI sparsifies it in place) *)
      let u64 = vec 64 1.0 and w1 = vec 64 2.0 and w2 = vec 64 3.0 in
      let p3 =
        plan_of (with_arith (fun () -> (!!u64 +: !!w1) +: (!!u64 +: !!w2)))
      in
      if
        not
          (List.exists (fun h -> h.Effects.cls = Effects.Rep_switch) (find p3))
      then
        add
          "seeded sparse/dense representation hazard (shared dense operand) \
           was not flagged";
      (* aliasing: two distinct containers over one physical vector — the
         case leaf-node identity (and CSE) cannot see *)
      let sv = Gbtl.Svector.of_dense Gbtl.Dtype.FP64 (Array.make 64 1.0) in
      let u1 = Ogb.Container.of_svector sv
      and u2 = Ogb.Container.of_svector sv in
      let p4 =
        plan_of (with_arith (fun () -> (!!u1 +: !!w1) +: (!!u2 +: !!w2)))
      in
      if
        not
          (List.exists (fun h -> h.Effects.cls = Effects.Rep_switch) (find p4))
      then add "aliased operands (two containers, one vector) were not flagged";
      List.rev !fs)

let run () =
  effects_self_tests ()
  @ List.map
      (fun f -> { area = "certify"; detail = Certify.describe f })
      (Certify.run ())
