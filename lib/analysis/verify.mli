(** Static plan verifier: shape/dtype inference over {!Exec.Plan} DAGs.

    {!infer} mirrors {!Exec.Plan.execute_node} rule for rule — matrix
    and vector dimensions through transposes, operand dtype promotion,
    mask kind/shape agreement, operator instantiation at the inferred
    dtype — but without running any kernel, so a malformed plan is
    rejected before execution instead of failing (or silently reading
    out of bounds, as an untyped [mxv] would) mid-schedule.

    {!check} additionally compares the inference against the last
    snapshot taken for the same plan value: the rewrite pipeline calls
    it after every fusion pass (through {!Exec.Verify_hook}), so a pass
    that changes a surviving node's inferred shape or dtype — a
    miscompile — is rejected with a diagnostic naming the stage and
    node. *)

type shape = S_vec of int | S_mat of int * int | S_scalar

type info = { shape : shape; dtype : Gbtl.Dtype.packed }

exception Verify_error of { stage : string; node : int; message : string }
(** A static defect: [node] is the plan node id the defect anchors to,
    [stage] the pipeline stage that observed it ("lower",
    "sink_transpose", ..., "pre-schedule", or "query" outside the
    pipeline). *)

val shape_to_string : shape -> string
val info_to_string : info -> string
val equal_info : info -> info -> bool

val message : exn -> string option
(** [Some rendered] for {!Verify_error}, [None] otherwise. *)

val infer : ?stage:string -> Exec.Plan.t -> (int, info) Hashtbl.t
(** Infer shape and dtype for every reachable node, in topological
    order.  @raise Verify_error on the first defect. *)

val root_info : ?stage:string -> Exec.Plan.t -> info
(** Inference for the plan's root, after checking the whole DAG and the
    sink mask. *)

val check : stage:string -> Exec.Plan.t -> unit
(** Full verification pass: {!infer}, sink-mask agreement, and
    comparison against the previous stage's snapshot of the same plan
    (dropped again once the ["pre-schedule"] stage passes).
    @raise Verify_error *)

val report : Exec.Plan.t -> string
(** Human-readable per-node inference listing (CLI [analyze]). *)
