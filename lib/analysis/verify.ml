(* Shape/dtype inference over plan DAGs, mirroring Plan.execute_node
   rule for rule.  The point of the mirror: every dimension the runtime
   would check (or worse, not check — the array-ABI mxv trusts its
   operand sizes) is derived statically here, so a defective plan or a
   miscompiling rewrite is rejected before any kernel runs. *)

open Gbtl
module Plan = Exec.Plan
module C = Ogb.Container

type shape = S_vec of int | S_mat of int * int | S_scalar

type info = { shape : shape; dtype : Dtype.packed }

exception Verify_error of { stage : string; node : int; message : string }

let verr ~stage ~node fmt =
  Printf.ksprintf
    (fun message -> raise (Verify_error { stage; node; message }))
    fmt

let shape_to_string = function
  | S_vec n -> Printf.sprintf "vec[%d]" n
  | S_mat (r, c) -> Printf.sprintf "mat[%dx%d]" r c
  | S_scalar -> "scalar"

let dtype_to_string (Dtype.P dt) = Dtype.name dt

let info_to_string i =
  Printf.sprintf "%s %s" (shape_to_string i.shape) (dtype_to_string i.dtype)

let equal_info a b = a.shape = b.shape && Dtype.equal_packed a.dtype b.dtype

let message = function
  | Verify_error { stage; node; message } ->
    Some (Printf.sprintf "plan verifier [%s] node #%d: %s" stage node message)
  | _ -> None

let kind_of_shape = function
  | S_vec _ -> Plan.K_vec
  | S_mat _ -> Plan.K_mat
  | S_scalar -> Plan.K_scalar

let kind_to_string = function
  | Plan.K_vec -> "vec"
  | Plan.K_mat -> "mat"
  | Plan.K_scalar -> "scalar"

(* -- operator agreement --
   Instantiating every named operator at the node's inferred dtype is
   exactly what the kernel's [build]/codegen step will do; doing it here
   turns an unknown-operator (or operator/dtype clash) crash inside a
   compile into a located static diagnostic. *)
let check_operators ~stage ~node (Dtype.P dt) op =
  let attempt what f =
    try ignore (f ()) with
    | Verify_error _ as e -> raise e
    | Binop.Unknown_operator name | Unaryop.Unknown_operator name ->
      verr ~stage ~node "unknown %s operator %S at dtype %s" what name
        (Dtype.name dt)
    | Monoid.Unknown_identity name ->
      verr ~stage ~node "unknown monoid identity %S at dtype %s" name
        (Dtype.name dt)
    | e ->
      verr ~stage ~node "%s operator rejected at dtype %s: %s" what
        (Dtype.name dt) (Printexc.to_string e)
  in
  let unary_chain chain =
    List.iter
      (fun f ->
        attempt "unary" (fun () -> Jit.Op_spec.instantiate_unary dt f))
      chain
  in
  match op with
  | Plan.MatMul { sr; _ } ->
    attempt "semiring" (fun () -> Jit.Op_spec.instantiate_semiring dt sr)
  | Plan.Ewise { op; _ } -> attempt "binary" (fun () -> Binop.of_name op dt)
  | Plan.ApplyChain { chain; _ } -> unary_chain chain
  | Plan.EwiseApply { op; chain; _ } ->
    attempt "binary" (fun () -> Binop.of_name op dt);
    unary_chain chain
  | Plan.EwiseMultReduce { op; monoid_op; identity } ->
    attempt "binary" (fun () -> Binop.of_name op dt);
    attempt "monoid" (fun () ->
        Jit.Op_spec.instantiate_monoid dt ~op:monoid_op ~identity)
  | Plan.ReduceRows { op; identity; _ } | Plan.ReduceScalar { op; identity } ->
    attempt "monoid" (fun () -> Jit.Op_spec.instantiate_monoid dt ~op ~identity)
  | Plan.Leaf _ | Plan.Transpose | Plan.ExtractVec _ | Plan.ExtractMat _
  | Plan.Select _ ->
    ()

let index_length ~stage ~node idx dim =
  try Index_set.length idx dim
  with _ -> verr ~stage ~node "invalid index set against dimension %d" dim

let infer ?(stage = "query") plan =
  let infos : (int, info) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun node ->
      let n = Plan.node plan node in
      let arity k =
        if Array.length n.Plan.deps < k then
          verr ~stage ~node "expected %d dependencies, found %d" k
            (Array.length n.Plan.deps)
      in
      let dep i =
        let id = n.Plan.deps.(i) in
        match Hashtbl.find_opt infos id with
        | Some inf -> inf
        | None -> verr ~stage ~node "dependency #%d escapes the DAG order" id
      in
      let two_vecs what =
        arity 2;
        let a = dep 0 and b = dep 1 in
        let dtype = Dtype.promote a.dtype b.dtype in
        match a.shape, b.shape with
        | S_vec n1, S_vec n2 ->
          if n1 <> n2 then
            verr ~stage ~node
              "element-wise operation on vectors of sizes %d and %d" n1 n2;
          (n1, dtype)
        | _, _ ->
          verr ~stage ~node "%s requires two vectors, found %s and %s" what
            (shape_to_string a.shape) (shape_to_string b.shape)
      in
      let inf =
        match n.Plan.op with
        | Plan.Leaf c ->
          let shape =
            if C.is_matrix c then
              let r, cl = C.shape c in
              S_mat (r, cl)
            else S_vec (C.size c)
          in
          { shape; dtype = C.dtype c }
        | Plan.Transpose -> (
          arity 1;
          let d = dep 0 in
          match d.shape with
          | S_mat (r, c) -> { d with shape = S_mat (c, r) }
          | S_vec _ -> d (* vector transpose is the identity *)
          | S_scalar -> verr ~stage ~node "transpose of a scalar")
        | Plan.MatMul { transpose_a = ta; transpose_b = tb; masked; _ } ->
          arity 2;
          let a = dep 0 and b = dep 1 in
          let dtype = Dtype.promote a.dtype b.dtype in
          let shape =
            match a.shape, b.shape with
            | S_mat (ar, ac), S_mat (br, bc) ->
              let er, ec = if ta then (ac, ar) else (ar, ac) in
              let fr, fc = if tb then (bc, br) else (br, bc) in
              if ec <> fr then
                verr ~stage ~node
                  "mxm inner dimension mismatch: %s @ %s (effective %dx%d @ \
                   %dx%d)"
                  (shape_to_string a.shape) (shape_to_string b.shape) er ec fr
                  fc;
              S_mat (er, fc)
            | S_mat (ar, ac), S_vec vn ->
              let inner = if ta then ar else ac in
              if inner <> vn then
                verr ~stage ~node
                  "mxv dimension mismatch: matrix %s%s against vector of size \
                   %d"
                  (shape_to_string a.shape)
                  (if ta then " (transposed)" else "")
                  vn;
              S_vec (if ta then ac else ar)
            | S_vec vn, S_mat (br, bc) ->
              let inner = if tb then bc else br in
              if inner <> vn then
                verr ~stage ~node
                  "vxm dimension mismatch: vector of size %d against matrix \
                   %s%s"
                  vn
                  (shape_to_string b.shape)
                  (if tb then " (transposed)" else "");
              S_vec (if tb then br else bc)
            | S_vec _, S_vec _ ->
              verr ~stage ~node
                "@ between two vectors (use eWiseMult + reduce for a dot \
                 product)"
            | S_scalar, _ | _, S_scalar ->
              verr ~stage ~node "@ with a scalar operand"
          in
          (match masked, shape with
          | None, _ -> ()
          | Some spec, S_mat (rr, rc) ->
            let mc = spec.Ogb.Expr.container in
            if not (C.is_matrix mc) then
              verr ~stage ~node "matrix operation masked by a vector"
            else begin
              let mr, mcl = C.shape mc in
              if (mr, mcl) <> (rr, rc) then
                verr ~stage ~node
                  "mask shape %dx%d does not match the %dx%d result" mr mcl rr
                  rc
            end
          | Some _, (S_vec _ | S_scalar) ->
            (* the runtime ignores a mask on a non-Mat×Mat product; the
               rewrite pipeline never plants one there *)
            ());
          { shape; dtype }
        | Plan.Ewise { transpose_a = ta; transpose_b = tb; _ } -> (
          arity 2;
          let a = dep 0 and b = dep 1 in
          let dtype = Dtype.promote a.dtype b.dtype in
          match a.shape, b.shape with
          | S_vec n1, S_vec n2 ->
            if n1 <> n2 then
              verr ~stage ~node
                "element-wise operation on vectors of sizes %d and %d" n1 n2;
            { shape = S_vec n1; dtype }
          | S_mat (ar, ac), S_mat (br, bc) ->
            let er, ec = if ta then (ac, ar) else (ar, ac) in
            let fr, fc = if tb then (bc, br) else (br, bc) in
            if (er, ec) <> (fr, fc) then
              verr ~stage ~node
                "element-wise operation on matrices of effective shapes %dx%d \
                 and %dx%d"
                er ec fr fc;
            { shape = S_mat (er, ec); dtype }
          | _, _ ->
            verr ~stage ~node
              "element-wise operation between a vector and a matrix (%s vs %s)"
              (shape_to_string a.shape) (shape_to_string b.shape))
        | Plan.ApplyChain { chain; transpose } -> (
          arity 1;
          let d = dep 0 in
          if chain = [] then verr ~stage ~node "empty apply chain";
          match d.shape with
          | S_vec _ -> d
          | S_mat (r, c) ->
            { d with shape = (if transpose then S_mat (c, r) else S_mat (r, c)) }
          | S_scalar -> verr ~stage ~node "apply on a scalar")
        | Plan.EwiseApply { chain; _ } ->
          if chain = [] then verr ~stage ~node "empty apply chain";
          let size, dtype = two_vecs "fused apply-over-ewise" in
          { shape = S_vec size; dtype }
        | Plan.EwiseMultReduce _ ->
          let _, dtype = two_vecs "fused mult-reduce" in
          { shape = S_scalar; dtype }
        | Plan.ReduceRows { transpose; _ } -> (
          arity 1;
          let d = dep 0 in
          match d.shape with
          | S_mat (r, c) ->
            { d with shape = S_vec (if transpose then c else r) }
          | S_vec _ | S_scalar -> verr ~stage ~node "reduce_rows on a vector")
        | Plan.ReduceScalar _ -> (
          arity 1;
          let d = dep 0 in
          match d.shape with
          | S_vec _ | S_mat _ -> { d with shape = S_scalar }
          | S_scalar -> verr ~stage ~node "scalar reduce of a scalar")
        | Plan.ExtractVec idx -> (
          arity 1;
          let d = dep 0 in
          match d.shape with
          | S_vec vn -> { d with shape = S_vec (index_length ~stage ~node idx vn) }
          | S_mat _ | S_scalar ->
            verr ~stage ~node "vector extract on a matrix")
        | Plan.ExtractMat { rows; cols; transpose } -> (
          arity 1;
          let d = dep 0 in
          match d.shape with
          | S_mat (r, c) ->
            let er, ec = if transpose then (c, r) else (r, c) in
            { d with
              shape =
                S_mat
                  ( index_length ~stage ~node rows er,
                    index_length ~stage ~node cols ec ) }
          | S_vec _ | S_scalar ->
            verr ~stage ~node "matrix extract on a vector")
        | Plan.Select _ -> (
          arity 1;
          let d = dep 0 in
          match d.shape with
          | S_vec _ | S_mat _ -> d
          | S_scalar -> verr ~stage ~node "select on a scalar")
      in
      let k = kind_of_shape inf.shape in
      if n.Plan.kind <> k then
        verr ~stage ~node "node kind %s disagrees with inferred shape %s"
          (kind_to_string n.Plan.kind)
          (shape_to_string inf.shape);
      check_operators ~stage ~node inf.dtype n.Plan.op;
      Hashtbl.replace infos node inf)
    (Plan.topo plan);
  infos

(* Sink-mask agreement: the write mask the assignment site will apply
   must match the result's kind and dimensions (Ops.write raises the
   matching runtime errors; here they are static). *)
let check_sink_mask ~stage plan rinf =
  let node = (Plan.root plan).Plan.id in
  match plan.Plan.sink_mask with
  | None -> ()
  | Some spec -> (
    let mc = spec.Ogb.Expr.container in
    match rinf.shape with
    | S_scalar -> verr ~stage ~node "scalar result cannot take a write mask"
    | S_mat (rr, rc) ->
      if not (C.is_matrix mc) then
        verr ~stage ~node "matrix output masked by a vector"
      else begin
        let mr, mcl = C.shape mc in
        if (mr, mcl) <> (rr, rc) then
          verr ~stage ~node
            "write mask shape %dx%d does not match the %dx%d result" mr mcl rr
            rc
      end
    | S_vec vn ->
      if C.is_matrix mc then
        verr ~stage ~node "vector output masked by a matrix"
      else if C.size mc <> vn then
        verr ~stage ~node "write mask size %d does not match result size %d"
          (C.size mc) vn)

let root_info ?(stage = "query") plan =
  let infos = infer ~stage plan in
  let r = Plan.root plan in
  match Hashtbl.find_opt infos r.Plan.id with
  | Some rinf ->
    check_sink_mask ~stage plan rinf;
    rinf
  | None -> verr ~stage ~node:r.Plan.id "root was not inferred"

(* -- stage-to-stage snapshots --
   Keyed on the plan value itself (physical identity): the rewrite
   pipeline verifies the same plan at up to eight stages, and any stage
   whose inference disagrees with the previous one on a surviving node
   is a miscompiling rewrite.  The entry is dropped once "pre-schedule"
   passes; a bounded queue keeps plans that never got there (a raise
   mid-pipeline) from accumulating. *)

type snap = { at : string; infos : (int, info) Hashtbl.t; root : info }

let snaps : (Plan.t * snap) list ref = ref []
let snaps_mutex = Mutex.create ()
let max_snaps = 64

let compare_snapshot ~stage ~plan prev infos rinf =
  Hashtbl.iter
    (fun node inf ->
      match Hashtbl.find_opt prev.infos node with
      | Some old when not (equal_info old inf) ->
        verr ~stage ~node
          "rewrite changed inferred %s to %s between %s and %s (miscompile)"
          (info_to_string old) (info_to_string inf) prev.at stage
      | Some _ | None -> ())
    infos;
  let node = (Plan.root plan).Plan.id in
  if not (equal_info prev.root rinf) then
    verr ~stage ~node
      "rewrite changed the plan result from %s to %s between %s and %s \
       (miscompile)"
      (info_to_string prev.root) (info_to_string rinf) prev.at stage

let check ~stage plan =
  let infos = infer ~stage plan in
  let r = Plan.root plan in
  let rinf =
    match Hashtbl.find_opt infos r.Plan.id with
    | Some rinf -> rinf
    | None -> verr ~stage ~node:r.Plan.id "root was not inferred"
  in
  check_sink_mask ~stage plan rinf;
  Mutex.protect snaps_mutex (fun () ->
      let prev = List.assq_opt plan !snaps in
      (match prev with
      | Some prev when stage <> "lower" ->
        compare_snapshot ~stage ~plan prev infos rinf
      | Some _ | None -> ());
      let others = List.filter (fun (p, _) -> p != plan) !snaps in
      if stage = "pre-schedule" then snaps := others
      else begin
        let entry = (plan, { at = stage; infos; root = rinf }) in
        let others =
          if List.length others >= max_snaps then
            List.filteri (fun i _ -> i < max_snaps - 1) others
          else others
        in
        snaps := entry :: others
      end)

let report plan =
  let infos = infer plan in
  let buf = Buffer.create 256 in
  List.iter
    (fun id ->
      let n = Plan.node plan id in
      let inf = Hashtbl.find infos id in
      Buffer.add_string buf
        (Printf.sprintf "  #%d %-14s %s%s\n" id
           (Plan.op_label n.Plan.op)
           (info_to_string inf)
           (if (Plan.root plan).Plan.id = id then "  <- root" else "")))
    (Plan.topo plan);
  Buffer.contents buf
