let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 64

let register key v = Hashtbl.replace table key v

let lookup key = Hashtbl.find_opt table key

let registered_keys () = Hashtbl.fold (fun k _ acc -> k :: acc) table []

(* Chunked parallel-for for generated parallel kernels.  The default
   runs the chunks sequentially in ascending order — exactly the
   decomposition the host pool uses — so a plugin loaded into a host
   without the pool (or with a single-domain budget) computes the same
   result.  The host's Parallel.Pool installs its implementation at
   startup. *)
let seq_for ~n ~grain f =
  let g = max 1 grain in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + g) in
    f !lo hi;
    lo := hi
  done

let par_for : (n:int -> grain:int -> (int -> int -> unit) -> unit) ref =
  ref seq_for
