(** The host/plugin handshake of the native JIT backend.

    A dynamically compiled kernel module's initializer calls {!register}
    with its signature key; the host looks the kernel up right after
    [Dynlink.loadfile].  Values cross the boundary as [Obj.t]: the
    signature key encodes the operand dtypes, so both sides agree on the
    concrete (monomorphic) type — the same contract as PyGB's
    [dlopen]/[getattr] on a [g++]-compiled module. *)

val register : string -> Obj.t -> unit
val lookup : string -> Obj.t option
val registered_keys : unit -> string list

val par_for : (n:int -> grain:int -> (int -> int -> unit) -> unit) ref
(** Chunked parallel-for service for generated parallel kernels: the
    host installs its shared domain pool here at startup (plugins link
    only against this module).  The default runs chunks sequentially in
    ascending order — the same decomposition, so results match. *)
