(* Random deferred-expression trees: the DSL evaluator against a direct
   recursive evaluation over the dense reference model.  Exercises
   operator capture, temp management, fusion, and kernel dispatch over
   arbitrarily shaped programs. *)

open Gbtl

let f64 = Dtype.FP64
let size = 6

(* a small random program AST *)
type rexpr =
  | Rleaf of int  (* index into the leaf pool *)
  | Radd of string * rexpr * rexpr
  | Rmult of string * rexpr * rexpr
  | Rapply of string * rexpr
  | Rmxv of rexpr  (* A @ e with a fixed matrix *)
  | Rtrans_mxv of rexpr  (* A.T @ e *)

let binop_pool = [ "Plus"; "Minus"; "Times"; "Min"; "Max"; "First"; "Second" ]
let unary_pool = [ "Identity"; "AdditiveInverse" ]

let rexpr_gen =
  let open QCheck.Gen in
  let leaf = map (fun i -> Rleaf i) (int_bound 2) in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            ( 2,
              map3
                (fun op a b -> Radd (op, a, b))
                (oneofl binop_pool) (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map3
                (fun op a b -> Rmult (op, a, b))
                (oneofl binop_pool) (self (depth - 1)) (self (depth - 1)) );
            ( 1,
              map2 (fun f x -> Rapply (f, x)) (oneofl unary_pool)
                (self (depth - 1)) );
            (1, map (fun x -> Rmxv x) (self (depth - 1)));
            (1, map (fun x -> Rtrans_mxv x) (self (depth - 1)));
          ])
    4

let rec print_rexpr = function
  | Rleaf i -> Printf.sprintf "v%d" i
  | Radd (op, a, b) ->
    Printf.sprintf "(%s +[%s] %s)" (print_rexpr a) op (print_rexpr b)
  | Rmult (op, a, b) ->
    Printf.sprintf "(%s *[%s] %s)" (print_rexpr a) op (print_rexpr b)
  | Rapply (f, x) -> Printf.sprintf "%s(%s)" f (print_rexpr x)
  | Rmxv x -> Printf.sprintf "(A @ %s)" (print_rexpr x)
  | Rtrans_mxv x -> Printf.sprintf "(A.T @ %s)" (print_rexpr x)

(* DSL-side build: constructors capture whatever context is active, so we
   surround each node construction with the right with-block. *)
let rec to_expr leaves = function
  | Rleaf i -> Ogb.Expr.of_container leaves.(i)
  | Radd (op, a, b) ->
    let ea = to_expr leaves a and eb = to_expr leaves b in
    Ogb.Context.with_ops [ Ogb.Context.binary op ] (fun () ->
        Ogb.Expr.add ea eb)
  | Rmult (op, a, b) ->
    let ea = to_expr leaves a and eb = to_expr leaves b in
    Ogb.Context.with_ops [ Ogb.Context.binary op ] (fun () ->
        Ogb.Expr.mult ea eb)
  | Rapply (f, x) ->
    Ogb.Expr.apply ~f:(Jit.Op_spec.Named f) (to_expr leaves x)
  | Rmxv x ->
    Ogb.Expr.matmul (Ogb.Expr.of_container (Lazy.force fixed_matrix_cont))
      (to_expr leaves x)
  | Rtrans_mxv x ->
    Ogb.Expr.matmul
      (Ogb.Expr.transpose (Ogb.Expr.of_container (Lazy.force fixed_matrix_cont)))
      (to_expr leaves x)

and fixed_matrix : float Smatrix.t Lazy.t =
  lazy
    (Smatrix.of_coo f64 size size
       [ (0, 1, 2.0); (1, 3, -1.0); (2, 2, 3.0); (3, 0, 1.0); (4, 5, 2.0);
         (5, 4, -2.0); (0, 4, 1.0); (3, 3, 1.0) ])

and fixed_matrix_cont : Ogb.Container.t Lazy.t =
  lazy (Ogb.Container.of_smatrix (Smatrix.dup (Lazy.force fixed_matrix)))

(* Reference evaluation over the dense model. *)
let rec ref_eval (leaves : float Dense_ref.vec array) = function
  | Rleaf i -> Array.copy leaves.(i)
  | Radd (op, a, b) ->
    Dense_ref.ewise_vec_t ~union:true (Binop.of_name op f64)
      (ref_eval leaves a) (ref_eval leaves b)
  | Rmult (op, a, b) ->
    Dense_ref.ewise_vec_t ~union:false (Binop.of_name op f64)
      (ref_eval leaves a) (ref_eval leaves b)
  | Rapply (f, x) ->
    Dense_ref.apply_vec_t (Unaryop.of_name f f64) (ref_eval leaves x)
  | Rmxv x ->
    Dense_ref.mxv_t (Semiring.arithmetic f64)
      (Dense_ref.mat_of_smatrix (Lazy.force fixed_matrix))
      (ref_eval leaves x)
  | Rtrans_mxv x ->
    Dense_ref.mxv_t (Semiring.arithmetic f64)
      (Dense_ref.transpose_mat
         (Dense_ref.mat_of_smatrix (Lazy.force fixed_matrix)))
      (ref_eval leaves x)

let case_gen =
  QCheck.Gen.(
    rexpr_gen >>= fun e ->
    Helpers.vec_gen size >>= fun v0 ->
    Helpers.vec_gen size >>= fun v1 ->
    Helpers.vec_gen size >|= fun v2 -> (e, [| v0; v1; v2 |]))

let print_case (e, _) = print_rexpr e

let qcheck_random_programs =
  Helpers.qtest ~count:500 "random expression trees match the dense model"
    (QCheck.make case_gen ~print:print_case)
    (fun (e, leaf_models) ->
      let leaves =
        Array.map
          (fun m ->
            Ogb.Container.of_svector (Dense_ref.svector_of_vec f64 m))
          leaf_models
      in
      let result = Ogb.Expr.force (to_expr leaves e) in
      let expected = ref_eval leaf_models e in
      Svector.equal
        (Ogb.Container.as_vector f64 result)
        (Dense_ref.svector_of_vec f64 expected))

let qcheck_random_programs_unfused =
  Helpers.qtest ~count:200 "random trees: fusion off agrees too"
    (QCheck.make case_gen ~print:print_case)
    (fun (e, leaf_models) ->
      let leaves =
        Array.map
          (fun m ->
            Ogb.Container.of_svector (Dense_ref.svector_of_vec f64 m))
          leaf_models
      in
      Ogb.Expr.set_fusion false;
      Fun.protect
        ~finally:(fun () -> Ogb.Expr.set_fusion true)
        (fun () ->
          let result = Ogb.Expr.force (to_expr leaves e) in
          let expected = ref_eval leaf_models e in
          Svector.equal
            (Ogb.Container.as_vector f64 result)
            (Dense_ref.svector_of_vec f64 expected)))

let qcheck_leaves_never_mutated =
  Helpers.qtest ~count:300 "evaluation never mutates leaf containers"
    (QCheck.make case_gen ~print:print_case)
    (fun (e, leaf_models) ->
      let leaves =
        Array.map
          (fun m ->
            Ogb.Container.of_svector (Dense_ref.svector_of_vec f64 m))
          leaf_models
      in
      ignore (Ogb.Expr.force (to_expr leaves e));
      Array.for_all2
        (fun c m ->
          Svector.equal
            (Ogb.Container.as_vector f64 c)
            (Dense_ref.svector_of_vec f64 m))
        leaves leaf_models)

let suite =
  [ Helpers.to_alcotest qcheck_random_programs;
    Helpers.to_alcotest qcheck_random_programs_unfused;
    Helpers.to_alcotest qcheck_leaves_never_mutated;
  ]
