(* Table I conformance: every GraphBLAS operation row, written in the DSL
   notation (third column), must produce the same result as the direct
   GBTL call (the semantics behind the mathematical notation in column
   two).  This is experiment E4 of DESIGN.md as a test suite. *)

open Ogb
open Ogb.Ops.Infix
open Gbtl

let f64 = Dtype.FP64

let a_mat () =
  Smatrix.of_coo f64 3 3
    [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 0, 4.0); (2, 2, 5.0) ]

let b_mat () =
  Smatrix.of_coo f64 3 3 [ (0, 1, 1.5); (1, 1, -1.0); (2, 0, 2.0); (2, 2, 0.5) ]

let u_vec () = Svector.of_coo f64 3 [ (0, 1.0); (2, 2.0) ]
let v_vec () = Svector.of_coo f64 3 [ (1, 3.0); (2, -1.0) ]

let m_mask () = Smatrix.of_coo Dtype.Bool 3 3 [ (0, 0, true); (1, 1, true); (2, 2, true) ]
let v_mask () = Svector.of_coo Dtype.Bool 3 [ (0, true); (2, true) ]

let check_matrix msg expected actual =
  Alcotest.check (Helpers.smatrix_testable f64) msg expected
    (Container.as_matrix f64 actual)

let check_vector msg expected actual =
  Alcotest.check (Helpers.svector_testable f64) msg expected
    (Container.as_vector f64 actual)

(* mxm: C<M> = A ⊕.⊗ B  <->  C[M] = A @ B *)
let test_mxm () =
  let a = a_mat () and b = b_mat () in
  let expected = Smatrix.create f64 3 3 in
  Matmul.mxm ~mask:(Mask.mmask (m_mask ())) (Semiring.arithmetic f64)
    ~out:expected a b;
  let c = Container.matrix_empty 3 3 in
  Ops.set
    ~mask:(Ops.Mask (Container.of_smatrix (m_mask ())))
    c
    (!!(Container.of_smatrix a) @. !!(Container.of_smatrix b));
  check_matrix "C[M] = A @ B" expected c

(* mxv: w<m> = A ⊕.⊗ u  <->  w[m] = A @ u *)
let test_mxv () =
  let a = a_mat () and u = u_vec () in
  let expected = Svector.create f64 3 in
  Matmul.mxv ~mask:(Mask.vmask (v_mask ())) (Semiring.arithmetic f64)
    ~out:expected a u;
  let w = Container.vector_empty 3 in
  Ops.set
    ~mask:(Ops.Mask (Container.of_svector (v_mask ())))
    w
    (!!(Container.of_smatrix a) @. !!(Container.of_svector u));
  check_vector "w[m] = A @ u" expected w

(* eWiseMult: C = A ⊗ B  <->  C = A * B; w = u ⊗ v  <->  w = u * v *)
let test_ewise_mult () =
  let a = a_mat () and b = b_mat () in
  let expected = Smatrix.create f64 3 3 in
  Ewise.matrix_mult (Binop.times f64) ~out:expected a b;
  let c = Container.matrix_empty 3 3 in
  Ops.set c (!!(Container.of_smatrix a) *: !!(Container.of_smatrix b));
  check_matrix "C = A * B" expected c;
  let u = u_vec () and v = v_vec () in
  let expected_v = Svector.create f64 3 in
  Ewise.vector_mult (Binop.times f64) ~out:expected_v u v;
  let w = Container.vector_empty 3 in
  Ops.set w (!!(Container.of_svector u) *: !!(Container.of_svector v));
  check_vector "w = u * v" expected_v w

(* eWiseAdd: C = A ⊕ B  <->  C = A + B *)
let test_ewise_add () =
  let a = a_mat () and b = b_mat () in
  let expected = Smatrix.create f64 3 3 in
  Ewise.matrix_add (Binop.plus f64) ~out:expected a b;
  let c = Container.matrix_empty 3 3 in
  Ops.set c (!!(Container.of_smatrix a) +: !!(Container.of_smatrix b));
  check_matrix "C = A + B" expected c

(* reduce (row): w = [⊕_j A(:,j)]  <->  w = reduce(monoid, A) *)
let test_reduce_row () =
  let a = a_mat () in
  let expected = Svector.create f64 3 in
  Apply_reduce.reduce_rows (Monoid.plus f64) ~out:expected a;
  let w = Container.vector_empty 3 in
  Ops.set w (Ops.reduce_rows !!(Container.of_smatrix a));
  check_vector "w = reduce(A)" expected w

(* reduce (scalar): s = [⊕_ij A(i,j)]  <->  s = reduce(A) *)
let test_reduce_scalar () =
  let a = a_mat () in
  let expected = Apply_reduce.reduce_matrix_scalar (Monoid.plus f64) a in
  Alcotest.check (Alcotest.float 1e-12) "s = reduce(A)" expected
    (Ops.reduce !!(Container.of_smatrix a));
  let u = u_vec () in
  let expected_u = Apply_reduce.reduce_vector_scalar (Monoid.plus f64) u in
  Alcotest.check (Alcotest.float 1e-12) "s = reduce(u)" expected_u
    (Ops.reduce !!(Container.of_svector u))

(* apply: C = f(A)  <->  C = apply(A) *)
let test_apply () =
  let a = a_mat () in
  let expected = Smatrix.create f64 3 3 in
  Apply_reduce.apply_matrix (Unaryop.additive_inverse f64) ~out:expected a;
  let c = Container.matrix_empty 3 3 in
  Context.with_ops [ Context.unary "AdditiveInverse" ] (fun () ->
      Ops.set c (Ops.apply !!(Container.of_smatrix a)));
  check_matrix "C = apply(A)" expected c

(* transpose: C = Aᵀ  <->  C = A.T *)
let test_transpose () =
  let a = a_mat () in
  let expected = Smatrix.create f64 3 3 in
  Transpose_op.transpose ~out:expected a;
  let c = Container.matrix_empty 3 3 in
  Ops.set c (tr !!(Container.of_smatrix a));
  check_matrix "C = A.T" expected c

(* extract: C = A(i,j)  <->  C = A[i,j]; w = u(i)  <->  w = u[i] *)
let test_extract () =
  let a = a_mat () in
  let rows = Index_set.List [| 0; 2 |] and cols = Index_set.All in
  let expected = Smatrix.create f64 2 3 in
  Extract.matrix ~out:expected a rows cols;
  let c = Container.matrix_empty 2 3 in
  Ops.set c (Expr.extract_mat !!(Container.of_smatrix a) rows cols);
  check_matrix "C = A[i,j]" expected c;
  let u = u_vec () in
  let idx = Index_set.List [| 2; 0 |] in
  let expected_v = Svector.create f64 2 in
  Extract.vector ~out:expected_v u idx;
  let w = Container.vector_empty 2 in
  Ops.set w (Expr.extract_vec !!(Container.of_svector u) idx);
  check_vector "w = u[i]" expected_v w

(* assign: C<M>(i,j) = A  <->  C[M][i,j] = A *)
let test_assign () =
  let target = Smatrix.of_coo f64 3 3 [ (0, 0, 9.0) ] in
  let src = Smatrix.of_coo f64 2 2 [ (0, 0, 1.0); (1, 1, 2.0) ] in
  let rows = Index_set.List [| 1; 2 |] and cols = Index_set.List [| 0; 1 |] in
  let expected = Smatrix.dup target in
  Assign.matrix ~out:expected src rows cols;
  let c = Container.of_smatrix (Smatrix.dup target) in
  Ops.set_region ~rows ~cols c !!(Container.of_smatrix src);
  check_matrix "C[i,j] = A" expected c;
  (* w<m>(i) = u *)
  let wt = Svector.of_coo f64 3 [ (1, 9.0) ] in
  let us = Svector.of_coo f64 2 [ (0, 5.0) ] in
  let idx = Index_set.List [| 0; 1 |] in
  let expected_v = Svector.dup wt in
  Assign.vector ~mask:(Mask.vmask (v_mask ())) ~out:expected_v us idx;
  let w = Container.of_svector (Svector.dup wt) in
  Ops.set_region
    ~mask:(Ops.Mask (Container.of_svector (v_mask ())))
    ~rows:idx w
    !!(Container.of_svector us);
  check_vector "w[m][i] = u" expected_v w

(* accumulate variants: C ⊙= ... via += *)
let test_accumulate () =
  let u = u_vec () and v = v_vec () in
  let expected = Svector.dup u in
  Ewise.vector_add ~accum:(Binop.plus f64) (Binop.plus f64) ~out:expected u v;
  let w = Container.of_svector (Svector.dup u) in
  Ops.update w (!!(Container.of_svector u) +: !!(Container.of_svector v));
  check_vector "w += u + v" expected w

let suite =
  [ Alcotest.test_case "Table I: mxm" `Quick test_mxm;
    Alcotest.test_case "Table I: mxv" `Quick test_mxv;
    Alcotest.test_case "Table I: eWiseMult" `Quick test_ewise_mult;
    Alcotest.test_case "Table I: eWiseAdd" `Quick test_ewise_add;
    Alcotest.test_case "Table I: reduce (row)" `Quick test_reduce_row;
    Alcotest.test_case "Table I: reduce (scalar)" `Quick test_reduce_scalar;
    Alcotest.test_case "Table I: apply" `Quick test_apply;
    Alcotest.test_case "Table I: transpose" `Quick test_transpose;
    Alcotest.test_case "Table I: extract" `Quick test_extract;
    Alcotest.test_case "Table I: assign" `Quick test_assign;
    Alcotest.test_case "Table I: accumulate" `Quick test_accumulate;
  ]
