test/test_graphs.ml: Alcotest Algorithms Array Dtype Gbtl Graphs Helpers List Printf QCheck Smatrix Svector Utilities
