test/test_pprint.ml: Alcotest Algorithms Helpers List Minivm
