test/test_expr_random.ml: Array Binop Dense_ref Dtype Fun Gbtl Helpers Jit Lazy Ogb Printf QCheck Semiring Smatrix Svector Unaryop
