test/helpers.ml: Alcotest Array Binop Dense_ref Dtype Gbtl List Mask QCheck QCheck_alcotest Semiring Smatrix String Svector
