test/test_minivm.ml: Alcotest Builtins Env Fun Interp List Minivm Value
