test/test_internals.ml: Alcotest Dtype Entries Gbtl Graphs Index_set List Matmul Semiring Smatrix Spa Svector
