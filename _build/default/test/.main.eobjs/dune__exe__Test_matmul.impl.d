test/test_matmul.ml: Alcotest Dense_ref Dtype Gbtl Helpers List Matmul QCheck Semiring Smatrix Svector
