test/test_apply_reduce.ml: Alcotest Apply_reduce Binop Dense_ref Dtype Gbtl Helpers Monoid QCheck Smatrix Svector Unaryop
