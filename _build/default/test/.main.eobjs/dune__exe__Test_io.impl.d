test/test_io.ml: Alcotest Dense_ref Dtype Filename Fun Gbtl Helpers Matrix_market Smatrix Sys
