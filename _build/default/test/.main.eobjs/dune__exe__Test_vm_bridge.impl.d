test/test_vm_bridge.ml: Alcotest Builtins Env Interp List Minivm Ogb Value
