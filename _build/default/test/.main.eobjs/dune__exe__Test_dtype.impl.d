test/test_dtype.ml: Alcotest Dtype Gbtl Helpers Int List QCheck
