test/test_jit_codegen.ml: Alcotest Binop Dtype Entries Filename Fun Gbtl Graphs Jit List Matmul Printf Smatrix Svector Unix
