test/test_containers.ml: Alcotest Array Binop Dtype Gbtl Hashtbl Helpers List QCheck Smatrix Svector
