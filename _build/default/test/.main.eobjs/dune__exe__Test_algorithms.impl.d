test/test_algorithms.ml: Alcotest Algorithms Array Dtype Fun Gbtl Graphs Hashtbl List Ogb Option Printf Queue Smatrix Svector
