test/test_jit.ml: Alcotest Dense_ref Dtype Filename Fun Gbtl Helpers Jit List Obj Printf QCheck Random Smatrix Svector Unix
