test/test_extensions.ml: Alcotest Algorithms Array Binop Dtype Gbtl Graphs Helpers Kronecker List Ogb Printf Select Smatrix Svector Utilities
