test/test_output.ml: Alcotest Array Binop Dense_ref Dtype Entries Gbtl Helpers Mask Output QCheck Smatrix Svector
