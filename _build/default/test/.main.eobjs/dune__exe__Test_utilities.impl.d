test/test_utilities.ml: Alcotest Array Dense_ref Dtype Fun Gbtl Helpers Matmul Option Semiring Smatrix Svector Utilities
