test/test_notation.ml: Alcotest Apply_reduce Assign Binop Container Context Dtype Ewise Expr Extract Gbtl Helpers Index_set Mask Matmul Monoid Ogb Ops Semiring Smatrix Svector Transpose_op Unaryop
