test/test_operators.ml: Alcotest Binop Dtype Gbtl Helpers List Monoid QCheck Semiring Unaryop
