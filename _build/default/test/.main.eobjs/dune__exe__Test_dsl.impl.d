test/test_dsl.ml: Alcotest Container Context Domain Expr Float Gbtl Graphs Jit Ogb Ops
