test/test_extract_assign.ml: Alcotest Assign Binop Dtype Extract Gbtl Index_set Mask Smatrix Svector
