test/dense_ref.ml: Alcotest Array Binop Dtype Entries Format Gbtl List Mask Monoid Option Semiring Smatrix Svector Unaryop
