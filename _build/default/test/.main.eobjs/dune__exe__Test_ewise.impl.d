test/test_ewise.ml: Alcotest Binop Dense_ref Dtype Ewise Gbtl Helpers QCheck Smatrix Svector
