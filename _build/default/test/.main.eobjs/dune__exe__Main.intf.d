test/main.mli:
