(* Shared test utilities: qcheck generators for sparse containers, masks
   and operator parameters, plus alcotest testables. *)

open Gbtl

let svector_testable dt =
  ignore dt;
  Alcotest.testable (fun fmt v -> Svector.pp fmt v) Svector.equal

let smatrix_testable dt =
  ignore dt;
  Alcotest.testable (fun fmt m -> Smatrix.pp fmt m) Smatrix.equal

(* -- Generators (QCheck v1 API) -- *)

let small_float_gen =
  (* Small integral floats: keeps every semiring exact so result
     comparison needs no tolerance. *)
  QCheck.Gen.map float_of_int (QCheck.Gen.int_range (-4) 4)

let entry_gen = small_float_gen

(* A sparse float vector of the given size with ~density fraction stored. *)
let vec_gen ?(density = 0.4) size =
  let open QCheck.Gen in
  list_repeat size (option ~ratio:density entry_gen)
  >|= fun cells -> Array.of_list cells

let mat_gen ?(density = 0.3) nrows ncols =
  let open QCheck.Gen in
  list_repeat nrows (vec_gen ~density ncols) >|= Array.of_list

let vmask_gen size =
  let open QCheck.Gen in
  oneof
    [ return Mask.No_vmask;
      (pair (list_repeat size bool) bool >|= fun (bits, compl_) ->
       Mask.Vmask { dense = Array.of_list bits; complemented = compl_ });
    ]

let mmask_gen nrows ncols =
  let open QCheck.Gen in
  oneof
    [ return Mask.No_mmask;
      ( pair (list_repeat (nrows * ncols) (option ~ratio:0.5 bool)) bool
      >|= fun (cells, compl_) ->
        let triples = ref [] in
        List.iteri
          (fun k cell ->
            match cell with
            | Some b -> triples := (k / ncols, k mod ncols, b) :: !triples
            | None -> ())
          cells;
        Mask.Mmask
          { m = Smatrix.of_coo Dtype.Bool nrows ncols !triples;
            complemented = compl_ } );
    ]

let accum_gen =
  let open QCheck.Gen in
  oneof
    [ return None;
      return (Some (Binop.plus Dtype.FP64));
      return (Some (Binop.min Dtype.FP64));
      return (Some (Binop.second Dtype.FP64));
    ]

let semiring_gen =
  let open QCheck.Gen in
  oneofl
    [ Semiring.arithmetic Dtype.FP64;
      Semiring.min_plus Dtype.FP64;
      Semiring.max_times Dtype.FP64;
      Semiring.min_select2nd Dtype.FP64;
    ]

let binop_gen =
  let open QCheck.Gen in
  oneofl
    (List.map (fun n -> Binop.of_name n Dtype.FP64) Binop.names)

(* Wrap a generator + printer into a QCheck arbitrary. *)
let arb ?print gen = QCheck.make ?print gen

let print_vec (v : float Dense_ref.vec) =
  String.concat ";"
    (Array.to_list
       (Array.map (function None -> "." | Some x -> string_of_float x) v))

let print_mat (m : float Dense_ref.mat) =
  String.concat "\n" (Array.to_list (Array.map print_vec m))

let qtest ?(count = 200) name arbitrary law =
  QCheck.Test.make ~count ~name arbitrary law

let to_alcotest = QCheck_alcotest.to_alcotest

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0
