open Gbtl

let f64 = Dtype.FP64
let mk_vec = Dense_ref.svector_of_vec f64
let alist = Alcotest.(list (pair int (float 0.0)))

let test_apply_vector () =
  let u = Svector.of_coo f64 4 [ (0, 2.0); (2, -3.0) ] in
  let w = Svector.create f64 4 in
  Apply_reduce.apply_vector (Unaryop.additive_inverse f64) ~out:w u;
  Alcotest.check alist "negated" [ (0, -2.0); (2, 3.0) ] (Svector.to_alist w)

let test_apply_bound_binop () =
  (* PageRank's damping step: m = apply(Times(0.85), m) *)
  let m = Smatrix.of_coo f64 2 2 [ (0, 1, 2.0); (1, 0, 4.0) ] in
  let out = Smatrix.create f64 2 2 in
  Apply_reduce.apply_matrix
    (Unaryop.bind2nd f64 (Binop.times f64) 0.5)
    ~out m;
  Alcotest.check
    Alcotest.(list (triple int int (float 0.0)))
    "scaled" [ (0, 1, 1.0); (1, 0, 2.0) ] (Smatrix.to_coo out)

let test_apply_preserves_structure () =
  let u = Svector.of_coo f64 4 [ (1, 0.0) ] in
  let w = Svector.create f64 4 in
  Apply_reduce.apply_vector (Unaryop.identity f64) ~out:w u;
  Alcotest.check Alcotest.int "stored zero stays stored" 1 (Svector.nvals w)

let test_reduce_rows () =
  let a =
    Smatrix.of_coo f64 3 3 [ (0, 0, 1.0); (0, 2, 2.0); (2, 1, 5.0) ]
  in
  let w = Svector.create f64 3 in
  Apply_reduce.reduce_rows (Monoid.plus f64) ~out:w a;
  Alcotest.check alist "row sums; empty row 1 has no entry"
    [ (0, 3.0); (2, 5.0) ]
    (Svector.to_alist w)

let test_reduce_cols_via_transpose () =
  let a = Smatrix.of_coo f64 2 3 [ (0, 0, 1.0); (1, 0, 2.0); (1, 2, 7.0) ] in
  let w = Svector.create f64 3 in
  Apply_reduce.reduce_rows ~transpose:true (Monoid.plus f64) ~out:w a;
  Alcotest.check alist "column sums" [ (0, 3.0); (2, 7.0) ] (Svector.to_alist w)

let test_reduce_scalar () =
  let a = Smatrix.of_coo f64 3 3 [ (0, 0, 1.0); (1, 2, 2.0); (2, 1, 4.0) ] in
  Alcotest.check (Alcotest.float 0.0) "sum all" 7.0
    (Apply_reduce.reduce_matrix_scalar (Monoid.plus f64) a);
  Alcotest.check (Alcotest.float 0.0) "max all" 4.0
    (Apply_reduce.reduce_matrix_scalar (Monoid.max f64) a);
  Alcotest.check (Alcotest.float 0.0) "empty matrix reduces to identity" 0.0
    (Apply_reduce.reduce_matrix_scalar (Monoid.plus f64)
       (Smatrix.create f64 2 2))

let test_reduce_scalar_accum () =
  let u = Svector.of_coo f64 3 [ (0, 1.0); (1, 2.0) ] in
  Alcotest.check (Alcotest.float 0.0) "s = s + reduce(u)" 13.0
    (Apply_reduce.reduce_vector_scalar ~accum:(Binop.plus f64) ~init:10.0
       (Monoid.plus f64) u)

let gen_apply =
  QCheck.Gen.(
    Helpers.vec_gen 6 >>= fun u ->
    Helpers.vec_gen 6 >>= fun c ->
    Helpers.vmask_gen 6 >>= fun mask ->
    Helpers.accum_gen >>= fun accum ->
    bool >|= fun replace -> (u, c, mask, accum, replace))

let qcheck_apply =
  Helpers.qtest ~count:400 "apply matches dense model" (Helpers.arb gen_apply)
    (fun (u, c, mask, accum, replace) ->
      let f = Unaryop.additive_inverse f64 in
      let out = mk_vec c in
      Apply_reduce.apply_vector ~mask ?accum ~replace f ~out (mk_vec u);
      let t = Dense_ref.apply_vec_t f u in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_reduce_rows =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 5 6 >>= fun a ->
      Helpers.vec_gen 5 >>= fun c ->
      Helpers.vmask_gen 5 >>= fun mask ->
      Helpers.accum_gen >>= fun accum ->
      bool >|= fun replace -> (a, c, mask, accum, replace))
  in
  Helpers.qtest ~count:400 "reduce_rows matches dense model"
    (Helpers.arb gen) (fun (a, c, mask, accum, replace) ->
      let m = Monoid.plus f64 in
      let out = mk_vec c in
      Apply_reduce.reduce_rows ~mask ?accum ~replace m ~out
        (Dense_ref.smatrix_of_mat f64 5 6 a);
      let t = Dense_ref.reduce_rows_t m a in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_reduce_scalar =
  Helpers.qtest ~count:400 "matrix scalar reduce matches dense model"
    (Helpers.arb (Helpers.mat_gen 5 6)) (fun a ->
      let m = Monoid.plus f64 in
      Apply_reduce.reduce_matrix_scalar m (Dense_ref.smatrix_of_mat f64 5 6 a)
      = Dense_ref.reduce_scalar_t m a)

let suite =
  [ Alcotest.test_case "apply vector" `Quick test_apply_vector;
    Alcotest.test_case "apply bound binop" `Quick test_apply_bound_binop;
    Alcotest.test_case "apply keeps structure" `Quick
      test_apply_preserves_structure;
    Alcotest.test_case "reduce rows" `Quick test_reduce_rows;
    Alcotest.test_case "reduce cols (transpose)" `Quick
      test_reduce_cols_via_transpose;
    Alcotest.test_case "reduce to scalar" `Quick test_reduce_scalar;
    Alcotest.test_case "reduce scalar with accum" `Quick
      test_reduce_scalar_accum;
    Helpers.to_alcotest qcheck_apply;
    Helpers.to_alcotest qcheck_reduce_rows;
    Helpers.to_alcotest qcheck_reduce_scalar;
  ]
