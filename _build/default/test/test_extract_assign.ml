open Gbtl

let f64 = Dtype.FP64
let alist = Alcotest.(list (pair int (float 0.0)))
let coolist = Alcotest.(list (triple int int (float 0.0)))

(* -- extract -- *)

let sample_matrix () =
  Smatrix.of_coo f64 4 4
    [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 0, 4.0); (2, 3, 5.0);
      (3, 2, 6.0) ]

let test_extract_submatrix () =
  let a = sample_matrix () in
  let out = Smatrix.create f64 2 2 in
  Extract.matrix ~out a
    (Index_set.List [| 0; 2 |])
    (Index_set.List [| 0; 3 |]);
  Alcotest.check coolist "A([0;2],[0;3])"
    [ (0, 0, 1.0); (1, 0, 4.0); (1, 1, 5.0) ]
    (Smatrix.to_coo out)

let test_extract_range () =
  let a = sample_matrix () in
  let out = Smatrix.create f64 2 4 in
  Extract.matrix ~out a (Index_set.Range { start = 1; stop = 3 }) Index_set.All;
  Alcotest.check coolist "A(1:3, :)"
    [ (0, 1, 3.0); (1, 0, 4.0); (1, 3, 5.0) ]
    (Smatrix.to_coo out)

let test_extract_duplicates_allowed () =
  let a = sample_matrix () in
  let out = Smatrix.create f64 2 4 in
  Extract.matrix ~out a (Index_set.List [| 0; 0 |]) Index_set.All;
  Alcotest.check coolist "row 0 twice"
    [ (0, 0, 1.0); (0, 2, 2.0); (1, 0, 1.0); (1, 2, 2.0) ]
    (Smatrix.to_coo out)

let test_extract_column () =
  let a = sample_matrix () in
  let out = Svector.create f64 4 in
  Extract.column ~out a Index_set.All 0;
  Alcotest.check alist "column 0" [ (0, 1.0); (2, 4.0) ] (Svector.to_alist out);
  let out2 = Svector.create f64 4 in
  Extract.column ~out:out2 ~transpose:true a Index_set.All 2;
  Alcotest.check alist "row 2 via transpose"
    [ (0, 4.0); (3, 5.0) ]
    (Svector.to_alist out2)

let test_extract_vector () =
  let u = Svector.of_coo f64 6 [ (1, 1.0); (3, 3.0); (5, 5.0) ] in
  let out = Svector.create f64 3 in
  Extract.vector ~out u (Index_set.List [| 5; 0; 3 |]);
  Alcotest.check alist "u([5;0;3])" [ (0, 5.0); (2, 3.0) ]
    (Svector.to_alist out)

let test_extract_bad_index () =
  let u = Svector.of_coo f64 4 [ (0, 1.0) ] in
  let out = Svector.create f64 1 in
  Alcotest.check_raises "out of range"
    (Index_set.Invalid_index "index 9 outside [0, 4)") (fun () ->
      Extract.vector ~out u (Index_set.List [| 9 |]))

(* -- assign -- *)

let test_assign_vector () =
  let w = Svector.of_coo f64 6 [ (0, 9.0); (2, 9.0); (5, 9.0) ] in
  let u = Svector.of_coo f64 2 [ (0, 1.0); (1, 2.0) ] in
  Assign.vector ~out:w u (Index_set.List [| 2; 4 |]);
  Alcotest.check alist "w([2;4]) = u"
    [ (0, 9.0); (2, 1.0); (4, 2.0); (5, 9.0) ]
    (Svector.to_alist w)

let test_assign_deletes_uncovered_region_entries () =
  (* no accumulator: old entries in the region not covered by the source
     are removed *)
  let w = Svector.of_coo f64 4 [ (1, 9.0); (2, 9.0) ] in
  let u = Svector.create f64 2 (* empty source *) in
  Assign.vector ~out:w u (Index_set.List [| 1; 2 |]);
  Alcotest.check alist "region cleared" [] (Svector.to_alist w)

let test_assign_accum_keeps_region_entries () =
  let w = Svector.of_coo f64 4 [ (1, 9.0); (2, 9.0) ] in
  let u = Svector.of_coo f64 2 [ (0, 1.0) ] in
  Assign.vector ~accum:(Binop.plus f64) ~out:w u (Index_set.List [| 1; 2 |]);
  Alcotest.check alist "accum merges region"
    [ (1, 10.0); (2, 9.0) ]
    (Svector.to_alist w)

let test_assign_scalar_all_masked () =
  (* the BFS idiom: levels<frontier> = depth *)
  let levels = Svector.of_coo f64 5 [ (0, 1.0) ] in
  let frontier = Svector.of_coo Dtype.Bool 5 [ (2, true); (4, true) ] in
  Assign.vector_scalar ~mask:(Mask.vmask frontier) ~out:levels 3.0
    Index_set.All;
  Alcotest.check alist "depth written at frontier, merge elsewhere"
    [ (0, 1.0); (2, 3.0); (4, 3.0) ]
    (Svector.to_alist levels)

let test_assign_scalar_range () =
  (* PyGB: new_rank[:] = c *)
  let v = Svector.create f64 4 in
  Assign.vector_scalar ~out:v 0.25 Index_set.All;
  Alcotest.check alist "constant fill"
    [ (0, 0.25); (1, 0.25); (2, 0.25); (3, 0.25) ]
    (Svector.to_alist v)

let test_assign_matrix () =
  let c = Smatrix.of_coo f64 4 4 [ (0, 0, 9.0); (1, 1, 9.0); (3, 3, 9.0) ] in
  let a = Smatrix.of_coo f64 2 2 [ (0, 0, 1.0); (1, 1, 2.0) ] in
  Assign.matrix ~out:c a
    (Index_set.List [| 1; 2 |])
    (Index_set.List [| 1; 2 |]);
  Alcotest.check coolist "C([1;2],[1;2]) = A"
    [ (0, 0, 9.0); (1, 1, 1.0); (2, 2, 2.0); (3, 3, 9.0) ]
    (Smatrix.to_coo c)

let test_assign_matrix_scalar () =
  let c = Smatrix.create f64 3 3 in
  Assign.matrix_scalar ~out:c 7.0
    (Index_set.Range { start = 0; stop = 2 })
    (Index_set.Range { start = 1; stop = 3 });
  Alcotest.check Alcotest.int "2x2 region filled" 4 (Smatrix.nvals c);
  Alcotest.check Alcotest.(option (float 0.0)) "corner" (Some 7.0)
    (Smatrix.get c 0 1)

let test_assign_duplicate_targets_rejected () =
  let w = Svector.create f64 4 in
  let u = Svector.create f64 2 in
  Alcotest.check_raises "duplicates rejected"
    (Index_set.Invalid_index "duplicate index 1 in assign") (fun () ->
      Assign.vector ~out:w u (Index_set.List [| 1; 1 |]))

let test_assign_replace_clears_outside_mask () =
  (* GrB_assign with REPLACE: masked-out entries die everywhere in C *)
  let w = Svector.of_coo f64 4 [ (0, 1.0); (3, 4.0) ] in
  let mask = Svector.of_coo Dtype.Bool 4 [ (0, true); (1, true) ] in
  let u = Svector.of_coo f64 2 [ (0, 8.0); (1, 9.0) ] in
  Assign.vector ~mask:(Mask.vmask mask) ~replace:true ~out:w u
    (Index_set.List [| 0; 1 |]);
  Alcotest.check alist "index 3 cleared by replace"
    [ (0, 8.0); (1, 9.0) ]
    (Svector.to_alist w)

let suite =
  [ Alcotest.test_case "extract submatrix" `Quick test_extract_submatrix;
    Alcotest.test_case "extract range" `Quick test_extract_range;
    Alcotest.test_case "extract duplicate rows" `Quick
      test_extract_duplicates_allowed;
    Alcotest.test_case "extract column/row" `Quick test_extract_column;
    Alcotest.test_case "extract vector" `Quick test_extract_vector;
    Alcotest.test_case "extract bad index" `Quick test_extract_bad_index;
    Alcotest.test_case "assign vector" `Quick test_assign_vector;
    Alcotest.test_case "assign deletes uncovered" `Quick
      test_assign_deletes_uncovered_region_entries;
    Alcotest.test_case "assign accum keeps" `Quick
      test_assign_accum_keeps_region_entries;
    Alcotest.test_case "assign scalar masked (BFS idiom)" `Quick
      test_assign_scalar_all_masked;
    Alcotest.test_case "assign scalar fill" `Quick test_assign_scalar_range;
    Alcotest.test_case "assign matrix" `Quick test_assign_matrix;
    Alcotest.test_case "assign matrix scalar" `Quick test_assign_matrix_scalar;
    Alcotest.test_case "assign duplicates rejected" `Quick
      test_assign_duplicate_targets_rejected;
    Alcotest.test_case "assign replace semantics" `Quick
      test_assign_replace_clears_outside_mask;
  ]
