open Gbtl

let test_rng_determinism () =
  let a = Graphs.Rng.create ~seed:42 in
  let b = Graphs.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.check (Alcotest.float 0.0) "same stream" (Graphs.Rng.float a)
      (Graphs.Rng.float b)
  done;
  let c = Graphs.Rng.create ~seed:43 in
  Alcotest.check Alcotest.bool "different seed differs" false
    (Graphs.Rng.float a = Graphs.Rng.float c)

let test_rng_bounds () =
  let r = Graphs.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let f = Graphs.Rng.float r in
    Alcotest.check Alcotest.bool "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Graphs.Rng.int r 10 in
    Alcotest.check Alcotest.bool "int in [0,10)" true (i >= 0 && i < 10)
  done

let test_erdos_renyi () =
  let rng = Graphs.Rng.create ~seed:1 in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:50 ~nedges:200 in
  Alcotest.check Alcotest.int "exact edge count" 200 (Graphs.Edge_list.nedges g);
  let adj = Graphs.Convert.bool_adjacency g in
  Alcotest.check Alcotest.int "no duplicate edges" 200 (Smatrix.nvals adj);
  Smatrix.iter
    (fun r c _ ->
      if r = c then Alcotest.fail "self loop in loop-free generator")
    adj

let test_erdos_renyi_paper_density () =
  let rng = Graphs.Rng.create ~seed:2 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:64 in
  (* |E| = |V|^1.5 = 512 *)
  Alcotest.check Alcotest.int "|E| = |V|^1.5" 512 (Graphs.Edge_list.nedges g)

let test_erdos_renyi_too_dense () =
  let rng = Graphs.Rng.create ~seed:3 in
  match Graphs.Generators.erdos_renyi_gnm rng ~nvertices:3 ~nedges:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_balanced_tree () =
  let g = Graphs.Generators.balanced_tree ~branching:2 ~height:3 in
  (* 2^4 - 1 = 15 vertices, 14 edges *)
  Alcotest.check Alcotest.int "vertices" 15 g.Graphs.Edge_list.nvertices;
  Alcotest.check Alcotest.int "edges" 14 (Graphs.Edge_list.nedges g);
  let g3 = Graphs.Generators.balanced_tree ~branching:3 ~height:2 in
  Alcotest.check Alcotest.int "ternary vertices" 13 g3.Graphs.Edge_list.nvertices

let test_simple_topologies () =
  let p = Graphs.Generators.path 5 in
  Alcotest.check Alcotest.int "path edges" 4 (Graphs.Edge_list.nedges p);
  let c = Graphs.Generators.cycle 5 in
  Alcotest.check Alcotest.int "cycle edges" 5 (Graphs.Edge_list.nedges c);
  let s = Graphs.Generators.star 5 in
  Alcotest.check Alcotest.int "star edges" 4 (Graphs.Edge_list.nedges s);
  let k = Graphs.Generators.complete 4 in
  Alcotest.check Alcotest.int "complete edges" 12 (Graphs.Edge_list.nedges k);
  let g = Graphs.Generators.grid2d ~rows:3 ~cols:4 in
  (* horizontal: 3*3, vertical: 2*4, both directions *)
  Alcotest.check Alcotest.int "grid edges" 34 (Graphs.Edge_list.nedges g)

let test_rmat () =
  let rng = Graphs.Rng.create ~seed:11 in
  let g = Graphs.Generators.rmat rng ~scale:6 ~edge_factor:8 in
  Alcotest.check Alcotest.int "2^scale vertices" 64 g.Graphs.Edge_list.nvertices;
  Alcotest.check Alcotest.bool "some edges survive self-loop filtering" true
    (Graphs.Edge_list.nedges g > 300);
  List.iter
    (fun (s, d, _) ->
      if s < 0 || s >= 64 || d < 0 || d >= 64 then
        Alcotest.fail "rmat edge out of range")
    g.Graphs.Edge_list.edges

let test_watts_strogatz () =
  let rng = Graphs.Rng.create ~seed:21 in
  let g = Graphs.Generators.watts_strogatz rng ~nvertices:40 ~k:4 ~beta:0.2 in
  (* undirected edge count is preserved by rewiring: n*k/2, both dirs *)
  Alcotest.check Alcotest.int "edge count preserved" (40 * 4)
    (Graphs.Edge_list.nedges g);
  let adj = Graphs.Convert.bool_adjacency g in
  Alcotest.check Alcotest.int "no duplicates" (40 * 4) (Smatrix.nvals adj);
  Smatrix.iter
    (fun r c _ ->
      if r = c then Alcotest.fail "self loop";
      if Smatrix.get adj c r = None then Alcotest.fail "asymmetric edge")
    adj;
  (* beta = 0 keeps the pure ring lattice *)
  let ring =
    Graphs.Generators.watts_strogatz
      (Graphs.Rng.create ~seed:5)
      ~nvertices:10 ~k:2 ~beta:0.0
  in
  let radj = Graphs.Convert.bool_adjacency ring in
  for v = 0 to 9 do
    Alcotest.check Alcotest.(option bool)
      (Printf.sprintf "ring edge %d" v)
      (Some true)
      (Smatrix.get radj v ((v + 1) mod 10))
  done

let test_barabasi_albert () =
  let rng = Graphs.Rng.create ~seed:22 in
  let g = Graphs.Generators.barabasi_albert rng ~nvertices:60 ~m:3 in
  let adj = Graphs.Convert.bool_adjacency g in
  Smatrix.iter
    (fun r c _ ->
      if r = c then Alcotest.fail "self loop";
      if Smatrix.get adj c r = None then Alcotest.fail "asymmetric edge")
    adj;
  (* connected: min-label propagation finds one component *)
  Alcotest.check Alcotest.int "connected" 1
    (Algorithms.Connected_components.component_count
       (Algorithms.Connected_components.native adj));
  (* hubs exist: max degree clearly above m *)
  let dmax =
    Array.fold_left max 0 (Utilities.row_degrees adj)
  in
  Alcotest.check Alcotest.bool "preferential hubs" true (dmax >= 6)

let test_symmetrize () =
  let g = Graphs.Edge_list.of_pairs ~nvertices:3 [ (0, 1); (1, 2) ] in
  let s = Graphs.Edge_list.symmetrize g in
  Alcotest.check Alcotest.int "mirrored" 4 (Graphs.Edge_list.nedges s);
  let adj = Graphs.Convert.bool_adjacency s in
  Alcotest.check Alcotest.(option bool) "reverse edge present" (Some true)
    (Smatrix.get adj 1 0)

let test_convert_roundtrip () =
  let g =
    { Graphs.Edge_list.nvertices = 4;
      edges = [ (0, 1, 2.5); (2, 3, -1.0); (3, 0, 7.0) ] }
  in
  let m = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let g' = Graphs.Convert.edges_of_matrix m in
  Alcotest.check Alcotest.int "vertices preserved" 4 g'.Graphs.Edge_list.nvertices;
  Alcotest.check
    Alcotest.(list (triple int int (float 0.0)))
    "edges preserved (sorted)"
    [ (0, 1, 2.5); (2, 3, -1.0); (3, 0, 7.0) ]
    (List.sort compare g'.Graphs.Edge_list.edges)

let test_out_degrees () =
  let g = Graphs.Edge_list.of_pairs ~nvertices:3 [ (0, 1); (0, 2); (2, 1) ] in
  let m = Graphs.Convert.bool_adjacency g in
  let d = Graphs.Convert.out_degrees m in
  Alcotest.check
    Alcotest.(list (pair int int))
    "degrees" [ (0, 2); (2, 1) ] (Svector.to_alist d)

let qcheck_er_determinism =
  Helpers.qtest ~count:30 "same seed, same graph"
    (QCheck.make QCheck.Gen.(int_range 0 10000) ~print:string_of_int)
    (fun seed ->
      let g1 =
        Graphs.Generators.erdos_renyi_paper
          (Graphs.Rng.create ~seed) ~nvertices:32
      in
      let g2 =
        Graphs.Generators.erdos_renyi_paper
          (Graphs.Rng.create ~seed) ~nvertices:32
      in
      g1.Graphs.Edge_list.edges = g2.Graphs.Edge_list.edges)

let suite =
  [ Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "erdos-renyi G(n,M)" `Quick test_erdos_renyi;
    Alcotest.test_case "paper density |E|=|V|^1.5" `Quick
      test_erdos_renyi_paper_density;
    Alcotest.test_case "too dense rejected" `Quick test_erdos_renyi_too_dense;
    Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
    Alcotest.test_case "paths/cycles/stars/grids" `Quick
      test_simple_topologies;
    Alcotest.test_case "rmat" `Quick test_rmat;
    Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz;
    Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "symmetrize" `Quick test_symmetrize;
    Alcotest.test_case "convert roundtrip" `Quick test_convert_roundtrip;
    Alcotest.test_case "out degrees" `Quick test_out_degrees;
    Helpers.to_alcotest qcheck_er_determinism;
  ]
