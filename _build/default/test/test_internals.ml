(* Unit tests for the small internal building blocks: Entries, Spa,
   Index_set, and assorted container edge cases. *)

open Gbtl

let f64 = Dtype.FP64

(* -- Entries -- *)

let test_entries_push_order () =
  let e = Entries.create () in
  Entries.push e 1 "a";
  Entries.push e 5 "b";
  Entries.push e 9 "c";
  Alcotest.check Alcotest.int "length" 3 (Entries.length e);
  Alcotest.check
    Alcotest.(list (pair int string))
    "to_alist"
    [ (1, "a"); (5, "b"); (9, "c") ]
    (Entries.to_alist e)

let test_entries_of_alist_sorts () =
  let e = Entries.of_alist [ (5, "b"); (1, "a"); (9, "c") ] in
  Alcotest.check
    Alcotest.(list (pair int string))
    "sorted"
    [ (1, "a"); (5, "b"); (9, "c") ]
    (Entries.to_alist e)

let test_entries_growth () =
  let e = Entries.create () in
  for i = 0 to 999 do
    Entries.push e i (i * 2)
  done;
  Alcotest.check Alcotest.int "grew to 1000" 1000 (Entries.length e);
  Alcotest.check Alcotest.int "values intact" 1998 (Entries.get_val e 999)

let test_entries_of_arrays_unsafe () =
  let e = Entries.of_arrays_unsafe [| 2; 7 |] [| 1.0; 2.0 |] ~len:2 in
  Alcotest.check Alcotest.int "len" 2 (Entries.length e);
  Alcotest.check Alcotest.int "idx" 7 (Entries.get_idx e 1)

(* -- Spa -- *)

let test_spa_accumulate_and_extract () =
  let spa = Spa.create 10 ~dummy:0.0 in
  Spa.accumulate spa 7 1.0 ~add:( +. );
  Spa.accumulate spa 3 2.0 ~add:( +. );
  Spa.accumulate spa 7 3.0 ~add:( +. );
  Alcotest.check Alcotest.int "two occupied" 2 (Spa.count spa);
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    "extract sorted"
    [ (3, 2.0); (7, 4.0) ]
    (Entries.to_alist (Spa.extract spa))

let test_spa_clear_is_cheap_and_complete () =
  let spa = Spa.create 8 ~dummy:0 in
  Spa.set spa 1 10;
  Spa.set spa 5 20;
  Spa.clear spa;
  Alcotest.check Alcotest.int "empty after clear" 0 (Spa.count spa);
  Alcotest.check Alcotest.bool "not occupied" false (Spa.occupied spa 1);
  (* reuse after clear *)
  Spa.set spa 2 30;
  Alcotest.check
    Alcotest.(list (pair int int))
    "reusable" [ (2, 30) ]
    (Entries.to_alist (Spa.extract spa))

let test_spa_filtered_extract () =
  let spa = Spa.create 8 ~dummy:0 in
  List.iter (fun i -> Spa.set spa i i) [ 1; 2; 3; 4 ];
  Alcotest.check
    Alcotest.(list (pair int int))
    "keep evens"
    [ (2, 2); (4, 4) ]
    (Entries.to_alist (Spa.extract_filtered spa ~keep:(fun i -> i mod 2 = 0)))

(* -- Index_set -- *)

let test_index_set_resolution () =
  Alcotest.check Alcotest.(array int) "All" [| 0; 1; 2 |]
    (Index_set.resolve Index_set.All 3);
  Alcotest.check Alcotest.(array int) "List" [| 2; 0 |]
    (Index_set.resolve (Index_set.List [| 2; 0 |]) 3);
  Alcotest.check Alcotest.(array int) "Range" [| 1; 2 |]
    (Index_set.resolve (Index_set.Range { start = 1; stop = 3 }) 5);
  Alcotest.check Alcotest.int "length All" 4 (Index_set.length Index_set.All 4);
  Alcotest.check Alcotest.int "length Range" 0
    (Index_set.length (Index_set.Range { start = 3; stop = 3 }) 5)

let test_index_set_errors () =
  (match Index_set.resolve (Index_set.Range { start = 2; stop = 1 }) 5 with
  | exception Index_set.Invalid_index _ -> ()
  | _ -> Alcotest.fail "bad range accepted");
  (match Index_set.resolve (Index_set.List [| 5 |]) 5 with
  | exception Index_set.Invalid_index _ -> ()
  | _ -> Alcotest.fail "oob index accepted");
  match Index_set.check_no_duplicates [| 1; 2; 1 |] with
  | exception Index_set.Invalid_index _ -> ()
  | _ -> Alcotest.fail "duplicates accepted"

(* -- container edge cases -- *)

let test_empty_matrix_ops () =
  let a = Smatrix.create f64 0 0 in
  let b = Smatrix.transpose a in
  Alcotest.check Alcotest.(pair int int) "0x0 transpose" (0, 0)
    (Smatrix.shape b);
  let v = Svector.create f64 0 in
  Alcotest.check Alcotest.int "empty vector" 0 (Svector.nvals v);
  let out = Smatrix.create f64 0 0 in
  Matmul.mxm (Semiring.arithmetic f64) ~out a a;
  Alcotest.check Alcotest.int "0x0 product" 0 (Smatrix.nvals out)

let test_single_row_col () =
  let row = Smatrix.of_coo f64 1 5 [ (0, 2, 3.0) ] in
  let col = Smatrix.transpose row in
  Alcotest.check Alcotest.(pair int int) "column shape" (5, 1)
    (Smatrix.shape col);
  let out = Smatrix.create f64 1 1 in
  Matmul.mxm (Semiring.arithmetic f64) ~out row col;
  Alcotest.check Alcotest.(option (float 0.0)) "1x1 = 9" (Some 9.0)
    (Smatrix.get out 0 0)

let test_replace_contents_shape_check () =
  let a = Smatrix.create f64 2 2 and b = Smatrix.create f64 3 3 in
  match Smatrix.replace_contents a b with
  | exception Smatrix.Dimension_mismatch _ -> ()
  | () -> Alcotest.fail "shape mismatch accepted"

let test_vector_large_random_sorted_invariant () =
  let rng = Graphs.Rng.create ~seed:15 in
  let v = Svector.create f64 1000 in
  for _ = 1 to 500 do
    Svector.set v (Graphs.Rng.int rng 1000) (Graphs.Rng.float rng)
  done;
  let sorted = ref true and prev = ref (-1) in
  Svector.iter
    (fun i _ ->
      if i <= !prev then sorted := false;
      prev := i)
    v;
  Alcotest.check Alcotest.bool "indices strictly ascending" true !sorted

let suite =
  [ Alcotest.test_case "entries push order" `Quick test_entries_push_order;
    Alcotest.test_case "entries of_alist" `Quick test_entries_of_alist_sorts;
    Alcotest.test_case "entries growth" `Quick test_entries_growth;
    Alcotest.test_case "entries of_arrays" `Quick
      test_entries_of_arrays_unsafe;
    Alcotest.test_case "spa accumulate/extract" `Quick
      test_spa_accumulate_and_extract;
    Alcotest.test_case "spa clear" `Quick test_spa_clear_is_cheap_and_complete;
    Alcotest.test_case "spa filtered extract" `Quick test_spa_filtered_extract;
    Alcotest.test_case "index_set resolve" `Quick test_index_set_resolution;
    Alcotest.test_case "index_set errors" `Quick test_index_set_errors;
    Alcotest.test_case "empty matrices" `Quick test_empty_matrix_ops;
    Alcotest.test_case "single row/col" `Quick test_single_row_col;
    Alcotest.test_case "replace_contents checks" `Quick
      test_replace_contents_shape_check;
    Alcotest.test_case "sorted invariant under churn" `Quick
      test_vector_large_random_sorted_invariant;
  ]
