open Gbtl

let check = Alcotest.check

(* -- named binary operators, spot semantics -- *)

let test_binop_arithmetic () =
  let f64 = Dtype.FP64 in
  check (Alcotest.float 0.0) "Plus" 7.0 (Binop.apply (Binop.plus f64) 3.0 4.0);
  check (Alcotest.float 0.0) "Minus" (-1.0)
    (Binop.apply (Binop.minus f64) 3.0 4.0);
  check (Alcotest.float 0.0) "Times" 12.0
    (Binop.apply (Binop.times f64) 3.0 4.0);
  check (Alcotest.float 0.0) "Div" 0.75 (Binop.apply (Binop.div f64) 3.0 4.0);
  check (Alcotest.float 0.0) "Min" 3.0 (Binop.apply (Binop.min f64) 3.0 4.0);
  check (Alcotest.float 0.0) "Max" 4.0 (Binop.apply (Binop.max f64) 3.0 4.0);
  check (Alcotest.float 0.0) "First" 3.0
    (Binop.apply (Binop.first f64) 3.0 4.0);
  check (Alcotest.float 0.0) "Second" 4.0
    (Binop.apply (Binop.second f64) 3.0 4.0)

let test_binop_comparisons () =
  let i32 = Dtype.Int32 in
  check Alcotest.int "LessThan true -> 1" 1
    (Binop.apply (Binop.less_than i32) 1 2);
  check Alcotest.int "LessThan false -> 0" 0
    (Binop.apply (Binop.less_than i32) 2 1);
  check Alcotest.int "Equal" 1 (Binop.apply (Binop.equal i32) 5 5);
  check Alcotest.int "NotEqual" 1 (Binop.apply (Binop.not_equal i32) 5 6);
  check Alcotest.int "GreaterEqual" 1
    (Binop.apply (Binop.greater_equal i32) 5 5);
  check Alcotest.int "LessEqual" 0 (Binop.apply (Binop.less_equal i32) 6 5)

let test_binop_logical () =
  let i32 = Dtype.Int32 in
  (* nonzero operands are truthy; result is canonical 0/1 *)
  check Alcotest.int "LogicalOr(0,7)" 1
    (Binop.apply (Binop.logical_or i32) 0 7);
  check Alcotest.int "LogicalAnd(3,7)" 1
    (Binop.apply (Binop.logical_and i32) 3 7);
  check Alcotest.int "LogicalAnd(0,7)" 0
    (Binop.apply (Binop.logical_and i32) 0 7);
  check Alcotest.int "LogicalXor(3,7)" 0
    (Binop.apply (Binop.logical_xor i32) 3 7)

let test_binop_unknown () =
  check Alcotest.bool "is_known" true (Binop.is_known "Plus");
  check Alcotest.bool "not known" false (Binop.is_known "Frobnicate");
  Alcotest.check_raises "unknown raises" (Binop.Unknown_operator "Frobnicate")
    (fun () -> ignore (Binop.of_name "Frobnicate" Dtype.FP64))

let test_binop_int_division_by_zero () =
  check Alcotest.int "int x/0 = 0 (documented)" 0
    (Binop.apply (Binop.div Dtype.Int32) 7 0);
  check (Alcotest.float 0.0) "float x/0 = inf" infinity
    (Binop.apply (Binop.div Dtype.FP64) 7.0 0.0)

let test_unaryops () =
  check Alcotest.int "Identity" 42
    (Unaryop.apply (Unaryop.identity Dtype.Int32) 42);
  check Alcotest.int "AdditiveInverse" (-42)
    (Unaryop.apply (Unaryop.additive_inverse Dtype.Int32) 42);
  check Alcotest.int "LogicalNot nonzero" 0
    (Unaryop.apply (Unaryop.logical_not Dtype.Int32) 42);
  check Alcotest.int "LogicalNot zero" 1
    (Unaryop.apply (Unaryop.logical_not Dtype.Int32) 0);
  check (Alcotest.float 0.0) "MultiplicativeInverse" 0.25
    (Unaryop.apply (Unaryop.multiplicative_inverse Dtype.FP64) 4.0);
  check Alcotest.int "int8 AdditiveInverse wraps at -128" (-128)
    (Unaryop.apply (Unaryop.additive_inverse Dtype.Int8) (-128))

let test_bind () =
  let damp = Unaryop.bind2nd Dtype.FP64 (Binop.times Dtype.FP64) 0.85 in
  check (Alcotest.float 1e-12) "bind2nd Times 0.85" 1.7
    (Unaryop.apply damp 2.0);
  let sub_from = Unaryop.bind1st Dtype.FP64 (Binop.minus Dtype.FP64) 1.0 in
  check (Alcotest.float 0.0) "bind1st Minus 1.0" 0.75
    (Unaryop.apply sub_from 0.25);
  (* names must distinguish instantiations for JIT keying *)
  let damp2 = Unaryop.bind2nd Dtype.FP64 (Binop.times Dtype.FP64) 0.5 in
  check Alcotest.bool "bound constants appear in names" false
    ((damp : float Unaryop.t).Unaryop.name
    = (damp2 : float Unaryop.t).Unaryop.name)

let test_monoid_identities () =
  check (Alcotest.float 0.0) "PlusMonoid identity" 0.0
    (Monoid.plus Dtype.FP64).Monoid.identity;
  check (Alcotest.float 0.0) "MinMonoid identity = +inf" infinity
    (Monoid.min Dtype.FP64).Monoid.identity;
  check Alcotest.int "MinMonoid int32 identity = max_int32" 2147483647
    (Monoid.min Dtype.Int32).Monoid.identity;
  check Alcotest.int "MaxMonoid int32 identity = min_int32" (-2147483648)
    (Monoid.max Dtype.Int32).Monoid.identity;
  check Alcotest.bool "LorMonoid identity" false
    (Monoid.logical_or Dtype.Bool).Monoid.identity;
  Alcotest.check_raises "unknown identity"
    (Monoid.Unknown_identity "Seven") (fun () ->
      ignore (Monoid.of_names ~op:"Plus" ~identity:"Seven" Dtype.Int32))

let test_semiring_construction () =
  let sr = Semiring.min_plus Dtype.FP64 in
  check (Alcotest.float 0.0) "MinPlus zero" infinity (Semiring.zero sr);
  check (Alcotest.float 0.0) "MinPlus add" 2.0 (Semiring.add sr 2.0 5.0);
  check (Alcotest.float 0.0) "MinPlus mul" 7.0 (Semiring.mul sr 2.0 5.0);
  let custom = Semiring.make (Monoid.plus Dtype.Int32) (Binop.min Dtype.Int32) in
  check Alcotest.int "custom semiring mul" 2 (Semiring.mul custom 2 5);
  Alcotest.check_raises "unknown semiring" (Semiring.Unknown_semiring "Tropical")
    (fun () -> ignore (Semiring.of_name "Tropical" Dtype.FP64));
  List.iter
    (fun name -> ignore (Semiring.of_name name Dtype.FP64))
    Semiring.names

let test_all_binops_all_dtypes () =
  (* every named operator instantiates at every dtype *)
  List.iter
    (fun (Dtype.P dt) ->
      List.iter
        (fun name ->
          let op = Binop.of_name name dt in
          ignore (Binop.apply op (Dtype.one dt) (Dtype.one dt)))
        Binop.names;
      List.iter
        (fun name ->
          let op = Unaryop.of_name name dt in
          ignore (Unaryop.apply op (Dtype.one dt)))
        Unaryop.names)
    Dtype.all

(* -- qcheck laws -- *)

let int_arb = QCheck.int_range (-1000) 1000

let monoid_laws name (m : int Monoid.t) =
  [ Helpers.qtest (name ^ " associativity")
      QCheck.(triple int_arb int_arb int_arb)
      (fun (a, b, c) ->
        let f = m.Monoid.op.Binop.f in
        f (f a b) c = f a (f b c));
    Helpers.qtest (name ^ " identity") int_arb (fun a ->
        let f = m.Monoid.op.Binop.f in
        f m.Monoid.identity a = a && f a m.Monoid.identity = a);
  ]

let semiring_laws name (sr : int Semiring.t) =
  [ Helpers.qtest (name ^ " distributivity")
      QCheck.(triple int_arb int_arb int_arb)
      (fun (a, b, c) ->
        Semiring.mul sr a (Semiring.add sr b c)
        = Semiring.add sr (Semiring.mul sr a b) (Semiring.mul sr a c));
  ]

(* The "identity of ⊕ annihilates ⊗" requirement (paper §II) holds for the
   float semirings, where Min's identity is +inf. *)
let annihilator_tests =
  let float_arb = QCheck.float_range (-1000.0) 1000.0 in
  [ Helpers.qtest "Arithmetic<f64> annihilator" float_arb (fun a ->
        let sr = Semiring.arithmetic Dtype.FP64 in
        Semiring.mul sr (Semiring.zero sr) a = 0.0);
    Helpers.qtest "MinPlus<f64> annihilator" float_arb (fun a ->
        let sr = Semiring.min_plus Dtype.FP64 in
        Semiring.mul sr (Semiring.zero sr) a = infinity);
  ]

let qcheck_suites =
  List.concat
    [ monoid_laws "PlusMonoid<int64>" (Monoid.plus Dtype.Int64);
      monoid_laws "MinMonoid<int64>" (Monoid.min Dtype.Int64);
      monoid_laws "MaxMonoid<int64>" (Monoid.max Dtype.Int64);
      monoid_laws "TimesMonoid<int64>" (Monoid.times Dtype.Int64);
      semiring_laws "MinPlus<int64>" (Semiring.min_plus Dtype.Int64);
      semiring_laws "MaxPlus<int64>" (Semiring.max_plus Dtype.Int64);
      semiring_laws "Arithmetic<int64>" (Semiring.arithmetic Dtype.Int64);
      annihilator_tests;
      [ Helpers.qtest "comparison ops return 0/1"
          QCheck.(pair int_arb int_arb)
          (fun (a, b) ->
            List.for_all
              (fun name ->
                let op = Binop.of_name name Dtype.Int64 in
                let r = Binop.apply op a b in
                r = 0 || r = 1)
              [ "Equal"; "NotEqual"; "LessThan"; "GreaterThan"; "LessEqual";
                "GreaterEqual"; "LogicalOr"; "LogicalAnd"; "LogicalXor" ]);
      ];
    ]

let suite =
  [ Alcotest.test_case "binop arithmetic" `Quick test_binop_arithmetic;
    Alcotest.test_case "binop comparisons" `Quick test_binop_comparisons;
    Alcotest.test_case "binop logical" `Quick test_binop_logical;
    Alcotest.test_case "unknown binop" `Quick test_binop_unknown;
    Alcotest.test_case "division by zero" `Quick
      test_binop_int_division_by_zero;
    Alcotest.test_case "unary ops" `Quick test_unaryops;
    Alcotest.test_case "bind1st/bind2nd" `Quick test_bind;
    Alcotest.test_case "monoid identities" `Quick test_monoid_identities;
    Alcotest.test_case "semiring construction" `Quick
      test_semiring_construction;
    Alcotest.test_case "all operators x all dtypes" `Quick
      test_all_binops_all_dtypes;
  ]
  @ List.map Helpers.to_alcotest qcheck_suites
