open Gbtl

let f64 = Dtype.FP64

let with_fresh_cache f =
  let saved_dir = Jit.Disk_cache.dir () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-jit-test-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Jit.Disk_cache.set_dir dir;
  Jit.Dispatch.clear_memory_cache ();
  Jit.Jit_stats.reset ();
  Fun.protect
    ~finally:(fun () ->
      Jit.Disk_cache.clear ();
      Jit.Disk_cache.set_dir saved_dir;
      Jit.Dispatch.clear_memory_cache ();
      Jit.Jit_stats.reset ())
    f

let test_signature_keys () =
  let s1 =
    Jit.Kernel_sig.make ~op:"mxv"
      ~dtypes:[ ("T", "double") ]
      ~operators:[ ("mul", "Times"); ("add", "Plus"); ("identity", "Zero") ]
      ~flags:[ "transpose_a" ] ()
  in
  let s2 =
    Jit.Kernel_sig.make ~op:"mxv"
      ~dtypes:[ ("T", "double") ]
      ~operators:[ ("add", "Plus"); ("identity", "Zero"); ("mul", "Times") ]
      ~flags:[ "transpose_a"; "transpose_a" ] ()
  in
  Alcotest.check Alcotest.string "key is canonical (order-insensitive)"
    (Jit.Kernel_sig.key s1) (Jit.Kernel_sig.key s2);
  Alcotest.check Alcotest.string "hash_key is stable"
    (Jit.Kernel_sig.hash_key s1) (Jit.Kernel_sig.hash_key s2);
  let s3 = Jit.Kernel_sig.make ~op:"mxv" ~dtypes:[ ("T", "int64_t") ] () in
  Alcotest.check Alcotest.bool "different dtypes, different keys" false
    (Jit.Kernel_sig.key s1 = Jit.Kernel_sig.key s3)

let test_dispatch_cache_levels () =
  with_fresh_cache (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Closure;
      let sig_ = Jit.Kernel_sig.make ~op:"test_op" ~dtypes:[ ("T", "double") ] () in
      let builds = ref 0 in
      let build () =
        incr builds;
        Obj.repr (fun (x : int) -> x + 1)
      in
      let k1 = Jit.Dispatch.get sig_ ~build () in
      let k2 = Jit.Dispatch.get sig_ ~build () in
      Alcotest.check Alcotest.int "built once" 1 !builds;
      Alcotest.check Alcotest.bool "memoized" true (k1 == k2);
      let s = Jit.Jit_stats.snapshot () in
      Alcotest.check Alcotest.int "2 lookups" 2 s.Jit.Jit_stats.lookups;
      Alcotest.check Alcotest.int "1 memory hit" 1 s.Jit.Jit_stats.memory_hits;
      Alcotest.check Alcotest.int "1 compile" 1 s.Jit.Jit_stats.compiles;
      (* clearing the memory cache must fall back to the disk marker *)
      Jit.Dispatch.clear_memory_cache ();
      let _ = Jit.Dispatch.get sig_ ~build () in
      let s = Jit.Jit_stats.snapshot () in
      Alcotest.check Alcotest.int "disk hit after memory clear" 1
        s.Jit.Jit_stats.disk_hits;
      Jit.Dispatch.set_backend Jit.Dispatch.Auto)

let entry_list e =
  let acc = ref [] in
  Gbtl.Entries.iter (fun i v -> acc := (i, v) :: !acc) e;
  List.rev !acc

let test_closure_mxv () =
  with_fresh_cache (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Closure;
      let a = Smatrix.of_dense f64 [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
      let u = Svector.of_dense f64 [| 10.0; 100.0 |] in
      let t = Jit.Kernels.mxv f64 Jit.Op_spec.arithmetic ~transpose:false a u in
      Alcotest.check
        Alcotest.(list (pair int (float 0.0)))
        "closure mxv result"
        [ (0, 210.0); (1, 430.0) ]
        (entry_list t);
      Jit.Dispatch.set_backend Jit.Dispatch.Auto)

let test_codegen_produces_source () =
  let src =
    Jit.Codegen.mxv_source ~dtype:"double" ~sr:Jit.Op_spec.min_plus
      ~key:"testkey"
  in
  match src with
  | None -> Alcotest.fail "expected codegen to support double MinPlus"
  | Some s ->
    Alcotest.check Alcotest.bool "registers the key" true
      (Helpers.contains_substring s "Jit_plugin_api.register \"testkey\"");
    Alcotest.check Alcotest.bool "uses min for add" true
      (Helpers.contains_substring s "if x <= y then x else y")

let test_codegen_unsupported () =
  Alcotest.check Alcotest.bool "fp32 unsupported by codegen" true
    (Jit.Codegen.mxv_source ~dtype:"float" ~sr:Jit.Op_spec.arithmetic
       ~key:"k"
    = None);
  Alcotest.check Alcotest.bool "unknown op unsupported" true
    (Jit.Codegen.binop_expr ~dtype:"double" "Frobnicate" = None)

let test_native_backend_roundtrip () =
  if not (Jit.Native_backend.available ()) then
    Alcotest.skip ()
  else
    with_fresh_cache (fun () ->
        Jit.Dispatch.set_backend Jit.Dispatch.Native;
        let a = Smatrix.of_dense f64 [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
        let u = Svector.of_dense f64 [| 10.0; 100.0 |] in
        let t =
          Jit.Kernels.mxv f64 Jit.Op_spec.arithmetic ~transpose:false a u
        in
        Alcotest.check
          Alcotest.(list (pair int (float 0.0)))
          "natively compiled mxv result"
          [ (0, 210.0); (1, 430.0) ]
          (entry_list t);
        let s = Jit.Jit_stats.snapshot () in
        Alcotest.check Alcotest.int "one native compile" 1
          s.Jit.Jit_stats.native_compiles;
        Alcotest.check Alcotest.int "no native failures" 0
          s.Jit.Jit_stats.native_failures;
        Jit.Dispatch.set_backend Jit.Dispatch.Auto)

let test_native_matches_closure =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 5 6 >>= fun a ->
      Helpers.vec_gen 6 >>= fun u ->
      Helpers.vec_gen 5 >>= fun w ->
      pair bool Helpers.semiring_gen >|= fun (tr, sr) -> (a, u, w, tr, sr))
  in
  Helpers.qtest ~count:60 "native and closure kernels agree (mxv)"
    (Helpers.arb gen) (fun (a, u, w, tr, sr) ->
      if not (Jit.Native_backend.available ()) then true
      else begin
        let spec =
          Jit.Op_spec.
            { add_op = sr.Gbtl.Semiring.add.Gbtl.Monoid.op.Gbtl.Binop.name;
              add_identity = sr.Gbtl.Semiring.add.Gbtl.Monoid.identity_name;
              mul_op = sr.Gbtl.Semiring.mul.Gbtl.Binop.name }
        in
        let a_sp = Dense_ref.smatrix_of_mat f64 5 6 a in
        (* transposed mxv consumes a vector of size nrows (5), plain mxv
           one of size ncols (6) *)
        let u_sp =
          Dense_ref.svector_of_vec f64 (if tr then w else u)
        in
        let run backend =
          Jit.Dispatch.set_backend backend;
          Jit.Dispatch.clear_memory_cache ();
          let t = Jit.Kernels.mxv f64 spec ~transpose:tr a_sp u_sp in
          entry_list t
        in
        let n = run Jit.Dispatch.Native in
        let c = run Jit.Dispatch.Closure in
        Jit.Dispatch.set_backend Jit.Dispatch.Auto;
        n = c
      end)

let suite =
  [ Alcotest.test_case "signature keys" `Quick test_signature_keys;
    Alcotest.test_case "dispatch cache levels" `Quick
      test_dispatch_cache_levels;
    Alcotest.test_case "closure mxv" `Quick test_closure_mxv;
    Alcotest.test_case "codegen source" `Quick test_codegen_produces_source;
    Alcotest.test_case "codegen unsupported combos" `Quick
      test_codegen_unsupported;
    Alcotest.test_case "native backend roundtrip" `Quick
      test_native_backend_roundtrip;
    Helpers.to_alcotest test_native_matches_closure;
  ]
