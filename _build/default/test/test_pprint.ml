(* The Python-like renderer of MiniVM programs: pin the shape of the
   paper-figure listings. *)

let contains = Helpers.contains_substring

let test_bfs_listing () =
  let src = Minivm.Pprint.program Algorithms.Bfs.vm_program in
  List.iter
    (fun line ->
      Alcotest.check Alcotest.bool ("contains: " ^ line) true
        (contains src line))
    [ "def bfs(graph, frontier, levels):";
      "while frontier.nvals > 0:";
      "levels[frontier][:] = depth";
      "with Semiring(Logical), Replace:";
      "frontier[~levels] = graph.T @ frontier";
      "return levels" ]

let test_sssp_listing () =
  let src = Minivm.Pprint.program Algorithms.Sssp.vm_program in
  List.iter
    (fun line ->
      Alcotest.check Alcotest.bool ("contains: " ^ line) true
        (contains src line))
    [ "with Semiring(MinPlus), Accumulator(Min):";
      "path[None] += graph.T @ path" ]

let test_triangle_listing () =
  let src = Minivm.Pprint.program Algorithms.Triangle.vm_program in
  Alcotest.check Alcotest.bool "B[L] = L @ L.T" true
    (contains src "B[L] = L @ L.T");
  Alcotest.check Alcotest.bool "reduce" true (contains src "return reduce(B)")

let test_pagerank_listing () =
  let src = Minivm.Pprint.program Algorithms.Pagerank.vm_program in
  List.iter
    (fun line ->
      Alcotest.check Alcotest.bool ("contains: " ^ line) true
        (contains src line))
    [ "normalize_rows(m)";
      "with UnaryOp(Times, damping):";
      "new_rank[None] += page_rank @ m";
      "page_rank[~page_rank] = page_rank + new_rank" ]

let test_expression_forms () =
  let open Minivm.Ast in
  Alcotest.check Alcotest.string "lambda"
    "lambda x, y: ..."
    (Minivm.Pprint.expr (Lambda ([ "x"; "y" ], [])));
  Alcotest.check Alcotest.string "nested call"
    "f(g(1), xs[0])"
    (Minivm.Pprint.expr
       (Call
          ( Var "f",
            [ Call (Var "g", [ Const (Minivm.Value.Int 1) ]);
              Index (Var "xs", Const (Minivm.Value.Int 0)) ] )))

let suite =
  [ Alcotest.test_case "BFS listing (Fig. 2b)" `Quick test_bfs_listing;
    Alcotest.test_case "SSSP listing (Fig. 4a)" `Quick test_sssp_listing;
    Alcotest.test_case "triangle listing (Fig. 5a)" `Quick
      test_triangle_listing;
    Alcotest.test_case "PageRank listing (Fig. 7)" `Quick
      test_pagerank_listing;
    Alcotest.test_case "expression forms" `Quick test_expression_forms;
  ]
