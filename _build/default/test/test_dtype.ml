open Gbtl

let check = Alcotest.check

let test_names () =
  List.iter
    (fun (Dtype.P dt) ->
      let (Dtype.P dt') = Dtype.of_name (Dtype.name dt) in
      check Alcotest.string "roundtrip via name" (Dtype.name dt)
        (Dtype.name dt');
      let (Dtype.P dt'') = Dtype.of_name (Dtype.short_name dt) in
      check Alcotest.string "roundtrip via short name" (Dtype.name dt)
        (Dtype.name dt''))
    Dtype.all

let test_unknown_name () =
  Alcotest.check_raises "unknown dtype"
    (Invalid_argument "Dtype.of_name: unknown dtype long") (fun () ->
      ignore (Dtype.of_name "long"))

let test_rank_order () =
  let ranks = List.map (fun (Dtype.P dt) -> Dtype.rank dt) Dtype.all in
  check
    Alcotest.(list int)
    "Dtype.all is rank-sorted" (List.sort Int.compare ranks) ranks;
  check Alcotest.int "eleven dtypes" 11 (List.length ranks)

let test_promote () =
  let name_of (Dtype.P dt) = Dtype.name dt in
  check Alcotest.string "int8 + double = double" "double"
    (name_of (Dtype.promote (P Int8) (P FP64)));
  check Alcotest.string "uint32 + int64 = int64" "int64_t"
    (name_of (Dtype.promote (P UInt32) (P Int64)));
  check Alcotest.string "bool + bool = bool" "bool"
    (name_of (Dtype.promote (P Bool) (P Bool)));
  check Alcotest.string "promote is symmetric in rank" "float"
    (name_of (Dtype.promote (P FP32) (P UInt8)))

let test_wrapping () =
  check Alcotest.int "int8 wraps at 127+1" (-128)
    (Dtype.normalize Int8 128);
  check Alcotest.int "uint8 wraps at 255+1" 0 (Dtype.normalize UInt8 256);
  check Alcotest.int "int16 wraps" (-32768) (Dtype.normalize Int16 32768);
  check Alcotest.int "uint16 wraps" 1 (Dtype.normalize UInt16 65537);
  check Alcotest.int "int32 wraps" (-2147483648)
    (Dtype.normalize Int32 2147483648);
  check Alcotest.int "negative uint8 wraps" 255 (Dtype.normalize UInt8 (-1))

let test_fp32_rounding () =
  let x = Dtype.normalize FP32 0.1 in
  Alcotest.check (Alcotest.float 1e-9) "fp32 rounding of 0.1"
    0.100000001490116119 x;
  check Alcotest.bool "fp32 idempotent" true
    (Dtype.normalize FP32 x = x)

let test_casts () =
  check Alcotest.int "double -> int32 truncates" 3
    (Dtype.cast ~from:FP64 ~into:Int32 3.99);
  check Alcotest.int "double -> int8 wraps" (-126)
    (Dtype.cast ~from:FP64 ~into:Int8 130.0);
  check Alcotest.bool "int -> bool truthiness" true
    (Dtype.cast ~from:Int64 ~into:Bool 42);
  check Alcotest.int "bool -> int" 1 (Dtype.cast ~from:Bool ~into:Int32 true);
  check (Alcotest.float 0.0) "int64 -> double" 42.0
    (Dtype.cast ~from:Int64 ~into:FP64 42);
  check Alcotest.int "uint8 255 -> int8 = -1" (-1)
    (Dtype.cast ~from:UInt8 ~into:Int8 255)

let test_uint64 () =
  let max_u64 = Dtype.max_value Dtype.UInt64 in
  check Alcotest.string "uint64 max prints unsigned" "18446744073709551615"
    (Dtype.to_string UInt64 max_u64);
  check Alcotest.int "uint64 compare unsigned" 1
    (Dtype.compare_values UInt64 max_u64 1L);
  check Alcotest.bool "uint64 roundtrip via float is max" true
    (Dtype.equal_values UInt64 max_u64
       (Dtype.of_float UInt64 (Dtype.to_float UInt64 max_u64)))

let test_bounds () =
  check Alcotest.int "int8 range" 127 (Dtype.max_value Dtype.Int8);
  check Alcotest.int "uint32 max" 4294967295 (Dtype.max_value Dtype.UInt32);
  check (Alcotest.float 0.0) "fp64 min is -inf" neg_infinity
    (Dtype.min_value Dtype.FP64);
  List.iter
    (fun (Dtype.P dt) ->
      Alcotest.check Alcotest.bool
        (Dtype.name dt ^ " zero is falsy")
        false
        (Dtype.to_bool dt (Dtype.zero dt));
      Alcotest.check Alcotest.bool
        (Dtype.name dt ^ " one is truthy")
        true
        (Dtype.to_bool dt (Dtype.one dt)))
    Dtype.all

let test_equal_witness () =
  check Alcotest.bool "same dtype" true (Dtype.equal_packed (P Int32) (P Int32));
  check Alcotest.bool "same repr, different dtype" false
    (Dtype.equal_packed (P Int32) (P Int64));
  check Alcotest.bool "different repr" false
    (Dtype.equal_packed (P Bool) (P FP64))

let qcheck_cast_roundtrip =
  Helpers.qtest "int values survive int64 roundtrip for every dtype"
    (QCheck.make QCheck.Gen.(int_range (-100) 100) ~print:string_of_int)
    (fun i ->
      List.for_all
        (fun (Dtype.P dt) ->
          (* casting a small int into a dtype and back through float is
             the identity whenever the value fits *)
          let fits =
            Dtype.to_float dt (Dtype.max_value dt) >= float_of_int (abs i)
            && (Dtype.is_signed dt || i >= 0)
          in
          (not fits)
          || Dtype.to_float dt (Dtype.of_int dt i) = float_of_int i)
        Dtype.all)

let suite =
  [ Alcotest.test_case "name roundtrips" `Quick test_names;
    Alcotest.test_case "unknown name rejected" `Quick test_unknown_name;
    Alcotest.test_case "rank order" `Quick test_rank_order;
    Alcotest.test_case "promotion" `Quick test_promote;
    Alcotest.test_case "integer wrapping" `Quick test_wrapping;
    Alcotest.test_case "fp32 rounding" `Quick test_fp32_rounding;
    Alcotest.test_case "casts" `Quick test_casts;
    Alcotest.test_case "uint64 semantics" `Quick test_uint64;
    Alcotest.test_case "bounds and truthiness" `Quick test_bounds;
    Alcotest.test_case "equality witness" `Quick test_equal_witness;
    Helpers.to_alcotest qcheck_cast_roundtrip;
  ]
