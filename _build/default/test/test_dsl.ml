open Ogb
open Ogb.Ops.Infix

let f64 = Gbtl.Dtype.FP64

let ventries = Container.vector_entries
let mentries = Container.matrix_entries
let valist = Alcotest.(list (pair int (float 1e-9)))
let mlist = Alcotest.(list (triple int int (float 1e-9)))

(* -- containers -- *)

let test_constructors () =
  let v = Container.vector_dense [ 1.0; 2.0; 3.0 ] in
  Alcotest.check Alcotest.int "dense vector stores all" 3 (Container.nvals v);
  Alcotest.check Alcotest.string "default dtype is double" "double"
    (Container.dtype_name v);
  let vi =
    Container.vector_dense ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Int32) [ 1.9 ]
  in
  Alcotest.check Alcotest.string "dtype honoured" "int32_t"
    (Container.dtype_name vi);
  Alcotest.check valist "int cast truncates" [ (0, 1.0) ] (ventries vi);
  let m = Container.matrix_dense [ [ 1.0; 0.0 ]; [ 0.0; 4.0 ] ] in
  Alcotest.check Alcotest.(pair int int) "shape" (2, 2) (Container.shape m);
  let mc = Container.matrix_coo ~nrows:3 ~ncols:2 [ (2, 1, 5.0) ] in
  Alcotest.check mlist "coo" [ (2, 1, 5.0) ] (mentries mc)

let test_foreign_constructor () =
  let tree = Graphs.Generators.balanced_tree ~branching:2 ~height:2 in
  let m = Container.of_edge_list tree in
  Alcotest.check Alcotest.(pair int int) "7-vertex tree" (7, 7)
    (Container.shape m);
  Alcotest.check Alcotest.int "6 edges" 6 (Container.nvals m)

let test_kind_errors () =
  let v = Container.vector_dense [ 1.0 ] in
  (match Container.shape v with
  | exception Container.Kind_error _ -> ()
  | _ -> Alcotest.fail "expected Kind_error");
  let m = Container.matrix_dense [ [ 1.0 ] ] in
  match Container.size m with
  | exception Container.Kind_error _ -> ()
  | _ -> Alcotest.fail "expected Kind_error"

(* -- context stack -- *)

let test_context_defaults () =
  Alcotest.check Alcotest.string "default semiring is arithmetic" "Arithmetic"
    (Jit.Op_spec.semiring_name (Context.current_semiring ()));
  Alcotest.check Alcotest.string "default + is Plus" "Plus"
    (Context.current_add_binop ());
  Alcotest.check Alcotest.string "default * is Times" "Times"
    (Context.current_mult_binop ());
  Alcotest.check Alcotest.bool "no replace by default" false
    (Context.replace_flag ());
  Alcotest.check Alcotest.(option string) "no accumulator context" None
    (Context.current_accum ())

let test_context_nesting () =
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Alcotest.check Alcotest.string "outer semiring" "MinPlus"
        (Jit.Op_spec.semiring_name (Context.current_semiring ()));
      Context.with_ops [ Context.binary "Minus" ] (fun () ->
          Alcotest.check Alcotest.string "inner binary wins for +" "Minus"
            (Context.current_add_binop ());
          Alcotest.check Alcotest.string "semiring still visible" "MinPlus"
            (Jit.Op_spec.semiring_name (Context.current_semiring ()))));
  Alcotest.check Alcotest.int "stack restored" 0 (Context.depth ())

let test_context_restored_on_exception () =
  (try
     Context.with_ops [ Context.semiring "Logical" ] (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.check Alcotest.int "stack popped after exception" 0
    (Context.depth ())

let test_accumulator_precedence () =
  (* regression: within one with-block the accumulator must win over the
     semiring for += even though the semiring is pushed later *)
  Context.with_ops
    [ Context.accum "Second"; Context.semiring "Arithmetic" ]
    (fun () ->
      Alcotest.check Alcotest.(option string) "accumulator wins"
        (Some "Second") (Context.current_accum ()));
  (* the SSSP fallback: no accumulator entry -> semiring's ⊕ *)
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Alcotest.check Alcotest.(option string) "fallback to semiring add"
        (Some "Min") (Context.current_accum ()))

(* -- deferred expressions -- *)

let test_deferred_operator_capture () =
  (* operators are captured when the expression is BUILT, not when it is
     evaluated (paper §IV) *)
  let u = Container.vector_dense [ 5.0; 8.0 ] in
  let v = Container.vector_dense [ 3.0; 1.0 ] in
  let expr =
    Context.with_ops [ Context.binary "Minus" ] (fun () -> !!u +: !!v)
  in
  (* evaluated OUTSIDE the with-block *)
  let out = Container.vector_empty 2 in
  Ops.set out expr;
  Alcotest.check valist "Minus captured at construction"
    [ (0, 2.0); (1, 7.0) ]
    (ventries out)

let test_matmul_shapes () =
  let a = Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let u = Container.vector_dense [ 10.0; 100.0 ] in
  let w = Container.vector_empty 2 in
  Ops.set w (!!a @. !!u);
  Alcotest.check valist "mxv" [ (0, 210.0); (1, 430.0) ] (ventries w);
  Ops.set w (!!u @. !!a);
  Alcotest.check valist "vxm" [ (0, 310.0); (1, 420.0) ] (ventries w);
  let c = Container.matrix_empty 2 2 in
  Ops.set c (!!a @. !!a);
  Alcotest.check mlist "mxm"
    [ (0, 0, 7.0); (0, 1, 10.0); (1, 0, 15.0); (1, 1, 22.0) ]
    (mentries c);
  Ops.set w (tr !!a @. !!u);
  Alcotest.check valist "transposed mxv" [ (0, 310.0); (1, 420.0) ]
    (ventries w)

let test_vector_vector_matmul_rejected () =
  let u = Container.vector_dense [ 1.0 ] in
  match Ops.set (Container.vector_empty 1) (!!u @. !!u) with
  | exception Expr.Eval_error _ -> ()
  | () -> Alcotest.fail "expected Eval_error"

let test_upcasting () =
  let vi =
    Container.vector_dense ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Int32) [ 3.0 ]
  in
  let vf = Container.vector_dense [ 0.5 ] in
  Alcotest.check Alcotest.string "int32 + double promotes to double" "double"
    (let (Gbtl.Dtype.P dt) = Expr.result_dtype (!!vi +: !!vf) in
     Gbtl.Dtype.name dt);
  let out = Container.vector_empty 1 in
  Ops.set out (!!vi +: !!vf);
  Alcotest.check valist "computed at double" [ (0, 3.5) ] (ventries out);
  (* output container dtype forces a downcast on write *)
  let outi = Container.vector_empty ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Int32) 1 in
  Ops.set outi (!!vi +: !!vf);
  Alcotest.check valist "write-site downcast truncates" [ (0, 3.0) ]
    (ventries outi)

let test_masked_set_and_replace () =
  let target = Container.vector_coo ~size:4 [ (0, 9.0); (3, 9.0) ] in
  let src = Container.vector_dense [ 1.0; 2.0; 3.0; 4.0 ] in
  let mask = Container.vector_coo ~size:4 [ (1, 1.0); (3, 1.0) ] in
  Ops.set ~mask:(Ops.Mask mask) target !!src;
  Alcotest.check valist "merge semantics"
    [ (0, 9.0); (1, 2.0); (3, 4.0) ]
    (ventries target);
  let target2 = Container.vector_coo ~size:4 [ (0, 9.0); (3, 9.0) ] in
  Ops.set ~mask:(Ops.Mask mask) ~replace:true target2 !!src;
  Alcotest.check valist "replace clears outside mask"
    [ (1, 2.0); (3, 4.0) ]
    (ventries target2);
  (* replace via context entry (gb.Replace) *)
  let target3 = Container.vector_coo ~size:4 [ (0, 9.0) ] in
  Context.with_ops [ Context.replace ] (fun () ->
      Ops.set ~mask:(Ops.Mask mask) target3 !!src);
  Alcotest.check valist "context replace"
    [ (1, 2.0); (3, 4.0) ]
    (ventries target3)

let test_complemented_mask () =
  let target = Container.vector_empty 3 in
  let src = Container.vector_dense [ 1.0; 2.0; 3.0 ] in
  let m = Container.vector_coo ~size:3 [ (1, 1.0) ] in
  Ops.set ~mask:(~~m) target !!src;
  Alcotest.check valist "complement" [ (0, 1.0); (2, 3.0) ] (ventries target)

let test_update_accumulates () =
  let target = Container.vector_coo ~size:3 [ (0, 10.0); (1, 10.0) ] in
  let src = Container.vector_coo ~size:3 [ (0, 1.0); (2, 2.0) ] in
  Ops.update target !!src;
  Alcotest.check valist "default Plus accumulation"
    [ (0, 11.0); (1, 10.0); (2, 2.0) ]
    (ventries target);
  let t2 = Container.vector_coo ~size:3 [ (0, 10.0) ] in
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Ops.update t2 !!src);
  Alcotest.check valist "accum falls back to semiring Min"
    [ (0, 1.0); (2, 2.0) ]
    (ventries t2)

let test_apply_and_reduce () =
  let v = Container.vector_dense [ 1.0; 2.0; 3.0 ] in
  let out = Container.vector_empty 3 in
  Context.with_ops
    [ Context.unary_bound ~op:"Times" 2.0 ]
    (fun () -> Ops.set out (Ops.apply !!v));
  Alcotest.check valist "apply bound Times"
    [ (0, 2.0); (1, 4.0); (2, 6.0) ]
    (ventries out);
  Alcotest.check (Alcotest.float 1e-9) "reduce default Plus" 6.0
    (Ops.reduce !!v);
  Context.with_ops
    [ Context.monoid ~op:"Max" ~identity:"MaxIdentity" ]
    (fun () ->
      Alcotest.check (Alcotest.float 1e-9) "reduce with Max monoid" 3.0
        (Ops.reduce !!v))

let test_reduce_rows () =
  let m = Container.matrix_coo ~nrows:2 ~ncols:3 [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 5.0) ] in
  let out = Container.vector_empty 2 in
  Ops.set out (Ops.reduce_rows !!m);
  Alcotest.check valist "row sums" [ (0, 3.0); (1, 5.0) ] (ventries out)

let test_scalar_assign () =
  let v = Container.vector_empty 3 in
  Ops.assign_scalar v 0.5;
  Alcotest.check valist "fill" [ (0, 0.5); (1, 0.5); (2, 0.5) ] (ventries v);
  let m = Container.matrix_empty 2 2 in
  Ops.assign_scalar ~rows:(Gbtl.Index_set.List [| 1 |]) m 7.0;
  Alcotest.check mlist "row region fill" [ (1, 0, 7.0); (1, 1, 7.0) ]
    (mentries m)

let test_set_region () =
  let v = Container.vector_coo ~size:5 [ (0, 9.0) ] in
  let src = Container.vector_dense [ 1.0; 2.0 ] in
  Ops.set_region ~rows:(Gbtl.Index_set.Range { start = 2; stop = 4 }) v !!src;
  Alcotest.check valist "region assign"
    [ (0, 9.0); (2, 1.0); (3, 2.0) ]
    (ventries v)

let test_extract_exprs () =
  let m =
    Container.matrix_coo ~nrows:3 ~ncols:3
      [ (0, 0, 1.0); (1, 1, 2.0); (2, 2, 3.0); (2, 0, 4.0) ]
  in
  let out = Container.matrix_empty 2 2 in
  Ops.set out
    (Expr.extract_mat !!m
       (Gbtl.Index_set.List [| 0; 2 |])
       (Gbtl.Index_set.List [| 0; 2 |]));
  Alcotest.check mlist "submatrix"
    [ (0, 0, 1.0); (1, 0, 4.0); (1, 1, 3.0) ]
    (mentries out)

let test_masked_mxm_pruning () =
  (* the triangle-counting form: mask reaches the mxm kernel *)
  let l =
    Container.matrix_coo ~nrows:3 ~ncols:3 [ (1, 0, 1.0); (2, 0, 1.0); (2, 1, 1.0) ]
  in
  let b = Container.matrix_empty 3 3 in
  Context.with_ops [ Context.semiring "Arithmetic" ] (fun () ->
      Ops.set ~mask:(Ops.Mask l) b (!!l @. tr !!l));
  Alcotest.check mlist "B<L> = L Lᵀ" [ (2, 1, 1.0) ] (mentries b);
  Alcotest.check (Alcotest.float 0.0) "one triangle" 1.0 (Ops.reduce !!b)

let test_error_paths () =
  let u = Container.vector_dense [ 1.0; 2.0 ] in
  let m = Container.matrix_dense [ [ 1.0 ] ] in
  (* matrix result into a vector *)
  (match Ops.set u (!!m @. !!m) with
  | exception Ops.Dsl_error _ -> ()
  | () -> Alcotest.fail "matrix-into-vector accepted");
  (* vector masked by a matrix *)
  (match Ops.set ~mask:(Ops.Mask m) u !!u with
  | exception Ops.Dsl_error _ -> ()
  | () -> Alcotest.fail "matrix mask on vector accepted");
  (* size mismatch via assignment *)
  let w3 = Container.vector_dense [ 1.0; 2.0; 3.0 ] in
  (match Ops.set u !!w3 with
  | exception Ops.Dsl_error _ -> ()
  | () -> Alcotest.fail "size mismatch accepted");
  (* shape mismatch inside an expression *)
  match Ops.set u (!!u +: !!w3) with
  | exception Expr.Eval_error _ -> ()
  | () -> Alcotest.fail "ewise size mismatch accepted"

let test_expression_chaining () =
  (* (u + v) * w evaluated lazily in one assignment *)
  let u = Container.vector_dense [ 1.0; 2.0 ] in
  let v = Container.vector_dense [ 10.0; 20.0 ] in
  let w = Container.vector_dense [ 2.0; 0.5 ] in
  let out = Container.vector_empty 2 in
  Ops.set out ((!!u +: !!v) *: !!w);
  Alcotest.check valist "chained" [ (0, 22.0); (1, 11.0) ] (ventries out)

let test_context_is_domain_local () =
  (* two domains hold different semiring contexts concurrently; each
     evaluation must use its own — PyGB's §IV limitation, lifted *)
  let a = Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let u = Container.vector_dense [ 10.0; 100.0 ] in
  let run semiring_name =
    Context.with_ops [ Context.semiring semiring_name ] (fun () ->
        (* give the other domain time to interleave *)
        let acc = ref [] in
        for _ = 1 to 50 do
          let out = Container.vector_empty 2 in
          Ops.set out (!!a @. !!u);
          acc := Container.vector_entries out
        done;
        !acc)
  in
  let d1 = Domain.spawn (fun () -> run "MinPlus") in
  let d2 = Domain.spawn (fun () -> run "Arithmetic") in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  Alcotest.check valist "domain 1 used MinPlus" [ (0, 11.0); (1, 13.0) ] r1;
  Alcotest.check valist "domain 2 used Arithmetic"
    [ (0, 210.0); (1, 430.0) ]
    r2;
  Alcotest.check Alcotest.int "main domain stack untouched" 0 (Context.depth ())

let test_user_defined_operators () =
  (* paper §VIII future work: user operators by name, flowing through the
     context stack and kernel signatures like built-ins *)
  Gbtl.Binop.register_user "saturating_add"
    (fun x y -> Float.min 10.0 (x +. y));
  Gbtl.Unaryop.register_user "clamp01" (fun x -> Float.max 0.0 (Float.min 1.0 x));
  let u = Container.vector_dense [ 6.0; 0.5 ] in
  let out = Container.vector_empty 2 in
  Context.with_ops
    [ Context.binary "user:saturating_add" ]
    (fun () -> Ops.set out (!!u +: !!u));
  Alcotest.check valist "custom binary via context"
    [ (0, 10.0); (1, 1.0) ]
    (ventries out);
  Context.with_ops [ Context.unary "user:clamp01" ] (fun () ->
      Ops.set out (Ops.apply !!u));
  Alcotest.check valist "custom unary via context"
    [ (0, 1.0); (1, 0.5) ]
    (ventries out);
  (* a custom semiring over a user operator, with a literal identity *)
  let a = Container.matrix_dense [ [ 6.0; 6.0 ]; [ 0.0; 1.0 ] ] in
  Context.with_ops
    [ Context.custom_semiring ~add_op:"user:saturating_add"
        ~add_identity:"0" ~mul_op:"Times" ]
    (fun () -> Ops.set out (!!a @. !!u));
  Alcotest.check valist "custom semiring"
    [ (0, 10.0); (1, 0.5) ]
    (ventries out);
  (* unknown names still fail fast *)
  match Gbtl.Binop.of_name "user:nonexistent" Gbtl.Dtype.FP64 with
  | exception Gbtl.Binop.Unknown_operator _ -> ()
  | _ -> Alcotest.fail "expected Unknown_operator"

let test_fusion_equivalence () =
  (* apply over a computed sub-expression: fused and unfused evaluation
     must agree (fusion changes cost, never semantics) *)
  let a = Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let u = Container.vector_dense [ 1.0; 1.0 ] in
  let run () =
    let out = Container.vector_empty 2 in
    Context.with_ops
      [ Context.unary_bound ~op:"Times" 0.5 ]
      (fun () -> Ops.set out (Ops.apply (!!a @. !!u)));
    ventries out
  in
  Expr.set_fusion true;
  let fused = run () in
  Expr.set_fusion false;
  let unfused = run () in
  Expr.set_fusion true;
  Alcotest.check valist "fused = unfused" unfused fused;
  Alcotest.check valist "value" [ (0, 1.5); (1, 3.5) ] fused

let test_fused_module_path () =
  (* apply-chain over eWise compiles as one module; fused and unfused
     evaluations must agree, including chain application to eWiseAdd
     passthrough singletons *)
  let u = Container.vector_coo ~size:4 [ (0, 5.0); (2, 1.0) ] in
  let v = Container.vector_coo ~size:4 [ (1, 7.0); (2, 2.0) ] in
  let run () =
    let out = Container.vector_empty 4 in
    Context.with_ops
      [ Context.unary_bound ~op:"Times" 2.0 ]
      (fun () ->
        Ops.set out
          (Ops.apply
             (Ops.apply ~f:(Jit.Op_spec.Named "AdditiveInverse")
                (!!u +: !!v))));
    ventries out
  in
  Expr.set_fusion true;
  let fused = run () in
  Expr.set_fusion false;
  let unfused = run () in
  Expr.set_fusion true;
  Alcotest.check valist "fused module = unfused chain" unfused fused;
  (* chain = negate then double: singleton 5 -> -10, intersection 3 -> -6 *)
  Alcotest.check valist "values (incl. passthroughs)"
    [ (0, -10.0); (1, -14.0); (2, -6.0) ]
    fused

let test_fusion_never_mutates_leaves () =
  (* apply directly on a user container must not modify it *)
  let u = Container.vector_dense [ 1.0; 2.0 ] in
  let out = Container.vector_empty 2 in
  Context.with_ops [ Context.unary "AdditiveInverse" ] (fun () ->
      Ops.set out (Ops.apply !!u));
  Alcotest.check valist "result negated" [ (0, -1.0); (1, -2.0) ]
    (ventries out);
  Alcotest.check valist "input untouched" [ (0, 1.0); (1, 2.0) ] (ventries u);
  (* ... including through a transpose view *)
  let m = Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let outm = Container.matrix_empty 2 2 in
  Context.with_ops [ Context.unary "AdditiveInverse" ] (fun () ->
      Ops.set outm (Ops.apply (tr !!m)));
  Alcotest.check mlist "input matrix untouched"
    [ (0, 0, 1.0); (0, 1, 2.0); (1, 0, 3.0); (1, 1, 4.0) ]
    (mentries m)

let suite =
  [ Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "user-defined operators" `Quick
      test_user_defined_operators;
    Alcotest.test_case "domain-local contexts" `Quick
      test_context_is_domain_local;
    Alcotest.test_case "fusion equivalence" `Quick test_fusion_equivalence;
    Alcotest.test_case "fused-module pipeline" `Quick test_fused_module_path;
    Alcotest.test_case "fusion safety" `Quick test_fusion_never_mutates_leaves;
    Alcotest.test_case "foreign constructor" `Quick test_foreign_constructor;
    Alcotest.test_case "kind errors" `Quick test_kind_errors;
    Alcotest.test_case "context defaults" `Quick test_context_defaults;
    Alcotest.test_case "context nesting" `Quick test_context_nesting;
    Alcotest.test_case "context exception safety" `Quick
      test_context_restored_on_exception;
    Alcotest.test_case "accumulator precedence" `Quick
      test_accumulator_precedence;
    Alcotest.test_case "deferred operator capture" `Quick
      test_deferred_operator_capture;
    Alcotest.test_case "matmul shape dispatch" `Quick test_matmul_shapes;
    Alcotest.test_case "vec @ vec rejected" `Quick
      test_vector_vector_matmul_rejected;
    Alcotest.test_case "upcasting" `Quick test_upcasting;
    Alcotest.test_case "masked set / replace" `Quick
      test_masked_set_and_replace;
    Alcotest.test_case "complemented mask" `Quick test_complemented_mask;
    Alcotest.test_case "update accumulates" `Quick test_update_accumulates;
    Alcotest.test_case "apply and reduce" `Quick test_apply_and_reduce;
    Alcotest.test_case "reduce rows" `Quick test_reduce_rows;
    Alcotest.test_case "scalar assign" `Quick test_scalar_assign;
    Alcotest.test_case "region assign" `Quick test_set_region;
    Alcotest.test_case "extract expressions" `Quick test_extract_exprs;
    Alcotest.test_case "masked mxm (triangle form)" `Quick
      test_masked_mxm_pruning;
    Alcotest.test_case "expression chaining" `Quick test_expression_chaining;
    Alcotest.test_case "error paths" `Quick test_error_paths;
  ]
