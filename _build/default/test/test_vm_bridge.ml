(* The DSL inside the MiniVM: containers under interpreter operators,
   magic-method hooks, with-contexts, subscript assignment — the PyGB
   user experience end to end. *)

open Minivm
open Minivm.Ast

let i n = Const (Value.Int n)
let f x = Const (Value.Float x)
let s x = Const (Value.Str x)

let fresh_env () =
  let env = Env.create () in
  Builtins.install env;
  Ogb.Vm_bridge.install env;
  env

let run_program ?(bindings = []) block =
  let env = fresh_env () in
  List.iter (fun (name, v) -> Env.define env name v) bindings;
  Interp.exec_block env block;
  env

let vec l = Ogb.Container.vector_dense l
let wrap = Ogb.Vm_bridge.wrap_container
let unwrap = Ogb.Vm_bridge.unwrap_container

let ventries c = Ogb.Container.vector_entries c
let valist = Alcotest.(list (pair int (float 1e-9)))

let test_matmul_operator () =
  let a = Ogb.Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let u = vec [ 10.0; 100.0 ] in
  let w = Ogb.Container.vector_empty 2 in
  let env =
    run_program
      ~bindings:[ ("a", wrap a); ("u", wrap u); ("w", wrap w) ]
      [ SetIndex (Var "w", Const Value.Nil, Binary ("@", Var "a", Var "u")) ]
  in
  Alcotest.check valist "w = a @ u" [ (0, 210.0); (1, 430.0) ]
    (ventries (unwrap (Env.lookup env "w")))

let test_with_context_semiring () =
  let a = Ogb.Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let u = vec [ 10.0; 100.0 ] in
  let w = Ogb.Container.vector_empty 2 in
  let _ =
    run_program
      ~bindings:[ ("a", wrap a); ("u", wrap u); ("w", wrap w) ]
      [ With
          ( [ Call (Var "Semiring", [ s "MinPlus" ]) ],
            [ SetIndex (Var "w", Const Value.Nil, Binary ("@", Var "a", Var "u"))
            ] ) ]
  in
  Alcotest.check valist "min-plus product" [ (0, 11.0); (1, 13.0) ]
    (ventries w);
  (* the context must be popped afterwards *)
  Alcotest.check Alcotest.int "context stack empty" 0 (Ogb.Context.depth ())

let test_ewise_operators () =
  let u = vec [ 1.0; 2.0 ] in
  let v = vec [ 10.0; 20.0 ] in
  let w = Ogb.Container.vector_empty 2 in
  let _ =
    run_program
      ~bindings:[ ("u", wrap u); ("v", wrap v); ("w", wrap w) ]
      [ SetIndex (Var "w", Const Value.Nil, Binary ("+", Var "u", Var "v"));
        SetIndex (Var "w", Const Value.Nil, Binary ("*", Var "w", Var "v")) ]
  in
  Alcotest.check valist "(u + v) * v" [ (0, 110.0); (1, 440.0) ] (ventries w)

let test_transpose_attr_and_nvals () =
  let a = Ogb.Container.matrix_coo ~nrows:2 ~ncols:2 [ (0, 1, 5.0) ] in
  let w = Ogb.Container.vector_empty 2 in
  let u = vec [ 1.0; 1.0 ] in
  let env =
    run_program
      ~bindings:[ ("a", wrap a); ("u", wrap u); ("w", wrap w) ]
      [ SetIndex (Var "w", Const Value.Nil, Binary ("@", Attr (Var "a", "T"), Var "u"));
        Assign ("n", Attr (Var "a", "nvals"));
        Assign ("shape0", Index (Attr (Var "a", "shape"), i 0)) ]
  in
  Alcotest.check valist "aT @ u" [ (1, 5.0) ] (ventries w);
  Alcotest.check Alcotest.string "nvals" "1"
    (Value.to_string (Env.lookup env "n"));
  Alcotest.check Alcotest.string "shape[0]" "2"
    (Value.to_string (Env.lookup env "shape0"))

let test_masked_assignment () =
  let src = vec [ 1.0; 2.0; 3.0 ] in
  let m = Ogb.Container.vector_coo ~size:3 [ (1, 1.0) ] in
  let w = Ogb.Container.vector_empty 3 in
  let _ =
    run_program
      ~bindings:[ ("src", wrap src); ("m", wrap m); ("w", wrap w) ]
      [ SetIndex (Var "w", Var "m", Var "src") ]
  in
  Alcotest.check valist "masked" [ (1, 2.0) ] (ventries w);
  let w2 = Ogb.Container.vector_empty 3 in
  let _ =
    run_program
      ~bindings:[ ("src", wrap src); ("m", wrap m); ("w", wrap w2) ]
      [ SetIndex (Var "w", Unary ("~", Var "m"), Var "src") ]
  in
  Alcotest.check valist "complement" [ (0, 1.0); (2, 3.0) ] (ventries w2)

let test_masked_view_scalar_assign () =
  (* levels[front][:] = depth *)
  let levels = Ogb.Container.vector_empty 4 in
  let front = Ogb.Container.vector_coo ~size:4 [ (0, 1.0); (2, 1.0) ] in
  let _ =
    run_program
      ~bindings:[ ("levels", wrap levels); ("front", wrap front) ]
      [ SetIndex (Index (Var "levels", Var "front"), Var "AllIndices", i 7) ]
  in
  Alcotest.check valist "scalar through masked view"
    [ (0, 7.0); (2, 7.0) ]
    (ventries levels)

let test_update_method () =
  let w = vec [ 10.0; 10.0 ] in
  let u = vec [ 1.0; 2.0 ] in
  let _ =
    run_program
      ~bindings:[ ("w", wrap w); ("u", wrap u) ]
      [ With
          ( [ Call (Var "Accumulator", [ s "Plus" ]) ],
            [ ExprStmt (Method (Var "w", "update", [ Const Value.Nil; Var "u" ])) ] ) ]
  in
  Alcotest.check valist "w[None] += u" [ (0, 11.0); (1, 12.0) ] (ventries w)

let test_scalar_fill () =
  let w = Ogb.Container.vector_empty 3 in
  let _ =
    run_program
      ~bindings:[ ("w", wrap w) ]
      [ SetIndex (Var "w", Var "AllIndices", f 0.25) ]
  in
  Alcotest.check valist "w[:] = 0.25"
    [ (0, 0.25); (1, 0.25); (2, 0.25) ]
    (ventries w)

let test_reduce_and_apply_builtins () =
  let u = vec [ 1.0; 2.0; 3.0 ] in
  let w = Ogb.Container.vector_empty 3 in
  let env =
    run_program
      ~bindings:[ ("u", wrap u); ("w", wrap w) ]
      [ Assign ("total", Call (Var "reduce", [ Var "u" ]));
        With
          ( [ Call (Var "UnaryOp", [ s "Times"; f 2.0 ]) ],
            [ SetIndex (Var "w", Const Value.Nil, Call (Var "apply", [ Var "u" ])) ] ) ]
  in
  Alcotest.check Alcotest.string "reduce" "6" (Value.to_string (Env.lookup env "total"));
  Alcotest.check valist "apply" [ (0, 2.0); (1, 4.0); (2, 6.0) ] (ventries w)

let test_vector_matrix_builtins () =
  let env =
    run_program
      [ Assign ("v", Call (Var "Vector", [ ListLit [ f 1.0; f 2.0 ] ]));
        Assign ("m", Call (Var "Matrix", [ i 2; i 2; s "int64_t" ]));
        Assign ("n", Attr (Var "v", "nvals")) ]
  in
  Alcotest.check Alcotest.string "vector built" "2"
    (Value.to_string (Env.lookup env "n"));
  Alcotest.check Alcotest.string "matrix dtype" "int64_t"
    (Ogb.Container.dtype_name (unwrap (Env.lookup env "m")))

let test_element_access () =
  let u = vec [ 1.5; 2.5 ] in
  let env =
    run_program
      ~bindings:[ ("u", wrap u) ]
      [ Assign ("x", Index (Var "u", i 1));
        SetIndex (Var "u", i 0, f 9.0);
        Assign ("y", Index (Var "u", i 0)) ]
  in
  Alcotest.check Alcotest.string "read element" "2.5"
    (Value.to_string (Env.lookup env "x"));
  Alcotest.check Alcotest.string "written element" "9"
    (Value.to_string (Env.lookup env "y"))

let test_error_unsupported_binary () =
  let u = vec [ 1.0 ] in
  let env = fresh_env () in
  Env.define env "u" (wrap u);
  match Interp.eval env (Binary ("-", Var "u", Var "u")) with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected unsupported-binary error"

let suite =
  [ Alcotest.test_case "@ operator" `Quick test_matmul_operator;
    Alcotest.test_case "with Semiring context" `Quick
      test_with_context_semiring;
    Alcotest.test_case "+ and * operators" `Quick test_ewise_operators;
    Alcotest.test_case ".T / .nvals / .shape" `Quick
      test_transpose_attr_and_nvals;
    Alcotest.test_case "masked assignment" `Quick test_masked_assignment;
    Alcotest.test_case "masked view scalar assign" `Quick
      test_masked_view_scalar_assign;
    Alcotest.test_case "update (+=)" `Quick test_update_method;
    Alcotest.test_case "scalar fill" `Quick test_scalar_fill;
    Alcotest.test_case "reduce/apply builtins" `Quick
      test_reduce_and_apply_builtins;
    Alcotest.test_case "Vector/Matrix builtins" `Quick
      test_vector_matrix_builtins;
    Alcotest.test_case "element access" `Quick test_element_access;
    Alcotest.test_case "unsupported binary errors" `Quick
      test_error_unsupported_binary;
  ]
