(* Extensions beyond the paper's operation set: select, kronecker,
   k-truss, and the user-operator registry at the gbtl level. *)

open Gbtl

let f64 = Dtype.FP64
let coolist = Alcotest.(list (triple int int (float 1e-9)))

(* -- select -- *)

let sample () =
  Smatrix.of_coo f64 3 3
    [ (0, 0, 1.0); (0, 2, -2.0); (1, 0, 3.0); (1, 1, 0.0); (2, 1, 5.0) ]

let test_select_positional () =
  let a = sample () in
  let out = Smatrix.create f64 3 3 in
  Select.matrix (Select.Tril (-1)) ~out a;
  Alcotest.check coolist "strict lower"
    [ (1, 0, 3.0); (2, 1, 5.0) ]
    (Smatrix.to_coo out);
  Select.matrix (Select.Triu 1) ~out a;
  Alcotest.check coolist "strict upper" [ (0, 2, -2.0) ] (Smatrix.to_coo out);
  Select.matrix Select.Diag ~out a;
  Alcotest.check coolist "diagonal"
    [ (0, 0, 1.0); (1, 1, 0.0) ]
    (Smatrix.to_coo out);
  Select.matrix Select.Offdiag ~out a;
  Alcotest.check Alcotest.int "off-diagonal count" 3 (Smatrix.nvals out)

let test_select_value () =
  let a = sample () in
  let out = Smatrix.create f64 3 3 in
  Select.matrix (Select.Value_gt 0.0) ~out a;
  Alcotest.check coolist "positive entries"
    [ (0, 0, 1.0); (1, 0, 3.0); (2, 1, 5.0) ]
    (Smatrix.to_coo out);
  Select.matrix Select.Nonzero ~out a;
  Alcotest.check Alcotest.int "nonzero drops stored zero" 4 (Smatrix.nvals out);
  Select.matrix (Select.Value_eq (-2.0)) ~out a;
  Alcotest.check coolist "equality" [ (0, 2, -2.0) ] (Smatrix.to_coo out)

let test_select_vector () =
  let u = Svector.of_coo f64 5 [ (0, 2.0); (2, -1.0); (4, 3.0) ] in
  let out = Svector.create f64 5 in
  Select.vector (Select.Value_ge 2.0) ~out u;
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    "value filter"
    [ (0, 2.0); (4, 3.0) ]
    (Svector.to_alist out)

let test_select_agrees_with_utilities () =
  let rng = Graphs.Rng.create ~seed:77 in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:12 ~nedges:40 in
  let a = Graphs.Convert.matrix_of_edges f64 g in
  let out = Smatrix.create f64 12 12 in
  Select.matrix (Select.Tril (-1)) ~out a;
  Alcotest.check
    (Helpers.smatrix_testable f64)
    "select tril = utilities lower_triangle"
    (Utilities.lower_triangle ~strict:true a)
    out

(* -- kronecker -- *)

let test_kronecker_small () =
  let a = Smatrix.of_dense f64 [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |] in
  let b = Smatrix.of_dense f64 [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let out = Smatrix.create f64 4 4 in
  Kronecker.kronecker (Binop.times f64) ~out a b;
  (* dense of_dense stores zeros, so nvals = 16 *)
  Alcotest.check Alcotest.(option (float 0.0)) "C(0,1) = a00*b01" (Some 1.0)
    (Smatrix.get out 0 1);
  Alcotest.check Alcotest.(option (float 0.0)) "C(0,3) = a01*b01" (Some 2.0)
    (Smatrix.get out 0 3);
  Alcotest.check Alcotest.(option (float 0.0)) "C(3,2) = a11*b10" (Some 3.0)
    (Smatrix.get out 3 2);
  Alcotest.check Alcotest.(option (float 0.0)) "C(2,0) = a10*b00" (Some 0.0)
    (Smatrix.get out 2 0)

let test_kronecker_structure () =
  (* pattern-only: kron of sparse patterns multiplies nvals *)
  let a = Smatrix.of_coo f64 2 2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  let out = Smatrix.create f64 4 4 in
  Kronecker.kronecker (Binop.times f64) ~out a a;
  Alcotest.check Alcotest.int "nvals multiply" 4 (Smatrix.nvals out);
  let p3 = Kronecker.power (Binop.times f64) a 3 in
  Alcotest.check Alcotest.(pair int int) "power shape" (8, 8) (Smatrix.shape p3);
  Alcotest.check Alcotest.int "power nvals" 8 (Smatrix.nvals p3)

let test_kronecker_identity () =
  let i2 = Utilities.identity f64 2 in
  let a = sample () in
  let out = Smatrix.create f64 6 6 in
  Kronecker.kronecker (Binop.times f64) ~out i2 a;
  (* I2 (x) A = block diag(A, A) *)
  Alcotest.check Alcotest.int "block diagonal nvals" (2 * Smatrix.nvals a)
    (Smatrix.nvals out);
  Alcotest.check Alcotest.(option (float 0.0)) "upper block" (Some 5.0)
    (Smatrix.get out 2 1);
  Alcotest.check Alcotest.(option (float 0.0)) "lower block" (Some 5.0)
    (Smatrix.get out 5 4);
  Alcotest.check Alcotest.(option (float 0.0)) "off block empty" None
    (Smatrix.get out 0 3)

(* -- k-truss -- *)

(* brute-force reference *)
let ref_ktruss pairs n k =
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (s, d) ->
      adj.(s).(d) <- true;
      adj.(d).(s) <- true)
    pairs;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if adj.(u).(v) then begin
          let support = ref 0 in
          for w = 0 to n - 1 do
            if adj.(u).(w) && adj.(v).(w) then incr support
          done;
          if !support < k - 2 then begin
            adj.(u).(v) <- false;
            adj.(v).(u) <- false;
            changed := true
          end
        end
      done
    done
  done;
  let edges = ref 0 in
  Array.iter (Array.iter (fun b -> if b then incr edges)) adj;
  !edges / 2

let test_ktruss_triangle_graph () =
  (* K4: every edge is in 2 triangles -> survives 4-truss, dies at 5 *)
  let k4 = Graphs.Convert.bool_adjacency (Graphs.Generators.complete 4) in
  Alcotest.check Alcotest.int "K4 4-truss keeps all" 6
    (Algorithms.Ktruss.edge_count (Algorithms.Ktruss.native ~k:4 k4));
  Alcotest.check Alcotest.int "K4 5-truss empty" 0
    (Algorithms.Ktruss.edge_count (Algorithms.Ktruss.native ~k:5 k4))

let test_ktruss_path_graph () =
  let p =
    Graphs.Convert.bool_adjacency
      (Graphs.Edge_list.symmetrize (Graphs.Generators.path 6))
  in
  Alcotest.check Alcotest.int "a path has no 3-truss" 0
    (Algorithms.Ktruss.edge_count (Algorithms.Ktruss.native ~k:3 p))

let test_ktruss_dsl_agrees () =
  let rng = Graphs.Rng.create ~seed:84 in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:16 ~nedges:60 in
  let adj = Graphs.Convert.bool_adjacency (Graphs.Edge_list.symmetrize g) in
  List.iter
    (fun k ->
      let native = Algorithms.Ktruss.native ~k adj in
      let dsl_result =
        Algorithms.Ktruss.dsl ~k (Ogb.Container.of_smatrix adj)
      in
      Alcotest.check Alcotest.int
        (Printf.sprintf "%d-truss: dsl = native" k)
        (Smatrix.nvals native)
        (Ogb.Container.nvals dsl_result);
      (* same structure, not just the same count *)
      List.iter
        (fun (r, c, _) ->
          if Smatrix.get native r c = None then
            Alcotest.failf "edge (%d,%d) only in the DSL result" r c)
        (Ogb.Container.matrix_entries dsl_result))
    [ 3; 4 ]

let test_ktruss_vs_reference () =
  List.iter
    (fun seed ->
      let rng = Graphs.Rng.create ~seed in
      let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:14 ~nedges:45 in
      let pairs = List.map (fun (s, d, _) -> (s, d)) g.Graphs.Edge_list.edges in
      let adj =
        Graphs.Convert.bool_adjacency (Graphs.Edge_list.symmetrize g)
      in
      List.iter
        (fun k ->
          Alcotest.check Alcotest.int
            (Printf.sprintf "%d-truss edges (seed %d)" k seed)
            (ref_ktruss pairs 14 k)
            (Algorithms.Ktruss.edge_count (Algorithms.Ktruss.native ~k adj)))
        [ 3; 4; 5 ])
    [ 81; 82; 83 ]

(* -- user operator registry at the gbtl level -- *)

let test_user_op_all_dtypes () =
  Binop.register_user "avg" (fun x y -> (x +. y) /. 2.0);
  List.iter
    (fun (Dtype.P dt) ->
      let op = Binop.of_name "user:avg" dt in
      let two = Dtype.of_int dt 2 in
      let four = Dtype.of_int dt 4 in
      Alcotest.check Alcotest.string
        ("user op at " ^ Dtype.name dt)
        (Dtype.to_string dt (Dtype.of_float dt 3.0))
        (Dtype.to_string dt (Binop.apply op two four)))
    Dtype.all;
  Alcotest.check Alcotest.bool "registered" true (Binop.user_registered "avg")

let suite =
  [ Alcotest.test_case "select positional" `Quick test_select_positional;
    Alcotest.test_case "select by value" `Quick test_select_value;
    Alcotest.test_case "select vector" `Quick test_select_vector;
    Alcotest.test_case "select = utilities tril" `Quick
      test_select_agrees_with_utilities;
    Alcotest.test_case "kronecker small" `Quick test_kronecker_small;
    Alcotest.test_case "kronecker structure" `Quick test_kronecker_structure;
    Alcotest.test_case "kronecker identity blocks" `Quick
      test_kronecker_identity;
    Alcotest.test_case "k-truss on cliques" `Quick test_ktruss_triangle_graph;
    Alcotest.test_case "k-truss on a path" `Quick test_ktruss_path_graph;
    Alcotest.test_case "k-truss vs brute force" `Quick
      test_ktruss_vs_reference;
    Alcotest.test_case "k-truss DSL agrees" `Quick test_ktruss_dsl_agrees;
    Alcotest.test_case "user ops at all dtypes" `Quick
      test_user_op_all_dtypes;
  ]
