open Gbtl

let f64 = Dtype.FP64

let test_normalize_rows () =
  let m = Smatrix.of_coo f64 3 3 [ (0, 0, 1.0); (0, 1, 3.0); (2, 2, 5.0) ] in
  Utilities.normalize_rows m;
  Alcotest.check Alcotest.(option (float 1e-12)) "row 0 first" (Some 0.25)
    (Smatrix.get m 0 0);
  Alcotest.check Alcotest.(option (float 1e-12)) "row 0 second" (Some 0.75)
    (Smatrix.get m 0 1);
  Alcotest.check Alcotest.(option (float 1e-12)) "singleton row" (Some 1.0)
    (Smatrix.get m 2 2)

let test_triangles_split () =
  let m =
    Smatrix.of_coo f64 3 3
      [ (0, 1, 1.0); (1, 0, 1.0); (1, 1, 9.0); (2, 0, 1.0); (0, 2, 1.0) ]
  in
  let l = Utilities.lower_triangle m in
  let u = Utilities.upper_triangle m in
  Alcotest.check Alcotest.int "strict lower has 2" 2 (Smatrix.nvals l);
  Alcotest.check Alcotest.int "strict upper has 2" 2 (Smatrix.nvals u);
  let l_incl = Utilities.lower_triangle ~strict:false m in
  Alcotest.check Alcotest.int "inclusive lower keeps diagonal" 3
    (Smatrix.nvals l_incl)

let test_identity_diag () =
  let i3 = Utilities.identity f64 3 in
  Alcotest.check Alcotest.int "identity nvals" 3 (Smatrix.nvals i3);
  let v = Svector.of_coo f64 3 [ (1, 5.0) ] in
  let d = Utilities.diag v in
  Alcotest.check Alcotest.(option (float 0.0)) "diag entry" (Some 5.0)
    (Smatrix.get d 1 1);
  Alcotest.check Alcotest.int "diag nvals" 1 (Smatrix.nvals d)

let test_identity_is_mxm_neutral () =
  let a = Smatrix.of_coo f64 3 3 [ (0, 1, 2.0); (2, 0, 3.0) ] in
  let i3 = Utilities.identity f64 3 in
  let c = Smatrix.create f64 3 3 in
  Matmul.mxm (Semiring.arithmetic f64) ~out:c a i3;
  Alcotest.check (Helpers.smatrix_testable f64) "A * I = A" a c

let test_row_degrees () =
  let m = Smatrix.of_coo f64 3 4 [ (0, 0, 1.0); (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.check Alcotest.(array int) "degrees" [| 2; 0; 1 |]
    (Utilities.row_degrees m)

let qcheck_normalized_rows_sum_to_one =
  Helpers.qtest ~count:200 "normalize_rows: nonempty rows sum to ~1"
    (Helpers.arb (Helpers.mat_gen ~density:0.5 5 5))
    (fun d ->
      (* use positive values to avoid zero-sum rows *)
      let d = Array.map (Array.map (Option.map (fun x -> abs_float x +. 1.0))) d in
      let m = Dense_ref.smatrix_of_mat f64 5 5 d in
      Utilities.normalize_rows m;
      Array.for_all
        (fun r ->
          let s = ref 0.0 and n = ref 0 in
          Smatrix.iter_row
            (fun _ x ->
              s := !s +. x;
              incr n)
            m r;
          !n = 0 || abs_float (!s -. 1.0) < 1e-9)
        (Array.init 5 Fun.id))

let suite =
  [ Alcotest.test_case "normalize_rows" `Quick test_normalize_rows;
    Alcotest.test_case "triangular splits" `Quick test_triangles_split;
    Alcotest.test_case "identity/diag" `Quick test_identity_diag;
    Alcotest.test_case "identity neutral for mxm" `Quick
      test_identity_is_mxm_neutral;
    Alcotest.test_case "row degrees" `Quick test_row_degrees;
    Helpers.to_alcotest qcheck_normalized_rows_sum_to_one;
  ]
