open Gbtl

let f64 = Dtype.FP64

let with_temp_file content f =
  let path = Filename.temp_file "ogb_test" ".mtx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let test_read_general_real () =
  let content =
    "%%MatrixMarket matrix coordinate real general\n\
     % a comment\n\
     3 3 3\n\
     1 1 1.5\n\
     2 3 2.5\n\
     3 1 -3.0\n"
  in
  with_temp_file content (fun path ->
      let m = Matrix_market.read f64 path in
      Alcotest.check Alcotest.(pair int int) "shape" (3, 3) (Smatrix.shape m);
      Alcotest.check
        Alcotest.(list (triple int int (float 0.0)))
        "entries (zero-based)"
        [ (0, 0, 1.5); (1, 2, 2.5); (2, 0, -3.0) ]
        (Smatrix.to_coo m))

let test_read_symmetric () =
  let content =
    "%%MatrixMarket matrix coordinate integer symmetric\n3 3 2\n2 1 5\n3 3 7\n"
  in
  with_temp_file content (fun path ->
      let m = Matrix_market.read Dtype.Int64 path in
      Alcotest.check Alcotest.int "expanded nvals" 3 (Smatrix.nvals m);
      Alcotest.check Alcotest.(option int) "mirrored" (Some 5)
        (Smatrix.get m 0 1);
      Alcotest.check Alcotest.(option int) "diagonal not doubled" (Some 7)
        (Smatrix.get m 2 2))

let test_read_pattern () =
  let content =
    "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
  in
  with_temp_file content (fun path ->
      let m = Matrix_market.read Dtype.Bool path in
      Alcotest.check Alcotest.(option bool) "pattern entry is one" (Some true)
        (Smatrix.get m 0 1))

let test_read_skew () =
  let content =
    "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n"
  in
  with_temp_file content (fun path ->
      let m = Matrix_market.read f64 path in
      Alcotest.check Alcotest.(option (float 0.0)) "negated mirror"
        (Some (-3.0)) (Smatrix.get m 0 1))

let test_bad_banner () =
  with_temp_file "%%MatrixMarket matrix array real general\n1 1\n1.0\n"
    (fun path ->
      match Matrix_market.read f64 path with
      | exception Matrix_market.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error")

let test_count_mismatch () =
  with_temp_file
    "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
    (fun path ->
      match Matrix_market.read f64 path with
      | exception Matrix_market.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error")

let test_write_read_roundtrip () =
  let m =
    Smatrix.of_coo f64 4 3 [ (0, 0, 1.25); (1, 2, -2.5); (3, 1, 1e-3) ]
  in
  let path = Filename.temp_file "ogb_rt" ".mtx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Matrix_market.write ~comment:"roundtrip test" m path;
      let m' = Matrix_market.read f64 path in
      Alcotest.check
        (Helpers.smatrix_testable f64)
        "roundtrip equality" m m')

let qcheck_roundtrip =
  Helpers.qtest ~count:50 "matrix market roundtrip (random)"
    (Helpers.arb (Helpers.mat_gen 6 5)) (fun d ->
      let m = Dense_ref.smatrix_of_mat f64 6 5 d in
      let path = Filename.temp_file "ogb_qrt" ".mtx" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Matrix_market.write m path;
          Smatrix.equal m (Matrix_market.read f64 path)))

let suite =
  [ Alcotest.test_case "read general real" `Quick test_read_general_real;
    Alcotest.test_case "read symmetric" `Quick test_read_symmetric;
    Alcotest.test_case "read pattern" `Quick test_read_pattern;
    Alcotest.test_case "read skew-symmetric" `Quick test_read_skew;
    Alcotest.test_case "bad banner rejected" `Quick test_bad_banner;
    Alcotest.test_case "count mismatch rejected" `Quick test_count_mismatch;
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Helpers.to_alcotest qcheck_roundtrip;
  ]
