(* The masked/accumulated write step (Output) against the dense reference
   model — this is where replace-vs-merge, complemented masks and
   accumulator interactions live. *)

open Gbtl

let f64 = Dtype.FP64

let check = Alcotest.check

(* Unit cases pinned from the C API spec prose. *)

let vec_of l = Svector.of_coo f64 5 l

let write ?(mask = Mask.No_vmask) ?accum ?(replace = false) c t =
  let out = vec_of c in
  Output.write_vector ~mask ~accum ~replace ~out ~t:(Entries.of_alist t);
  Svector.to_alist out

let mask_of ?(complemented = false) bits =
  Mask.Vmask { dense = Array.of_list bits; complemented }

let alist = Alcotest.(list (pair int (float 0.0)))

let test_no_mask_no_accum () =
  (* C = T exactly: old entries vanish *)
  check alist "result replaces contents"
    [ (1, 10.0); (3, 30.0) ]
    (write [ (0, 1.0); (1, 2.0) ] [ (1, 10.0); (3, 30.0) ])

let test_no_mask_accum () =
  check alist "accum merges old and new"
    [ (0, 1.0); (1, 12.0); (3, 30.0) ]
    (write ~accum:(Binop.plus f64) [ (0, 1.0); (1, 2.0) ]
       [ (1, 10.0); (3, 30.0) ])

let test_mask_merge () =
  (* positions outside the mask keep old values; inside becomes T exactly *)
  let mask = mask_of [ true; true; false; false; true ] in
  check alist "merge semantics"
    [ (1, 10.0); (2, 3.0) ]
    (write ~mask
       [ (0, 1.0); (2, 3.0) ]
       (* t: *)
       [ (1, 10.0); (2, 99.0) ]);
  (* index 0: allowed, old 1.0, absent in T -> deleted.
     index 1: allowed, T -> 10.
     index 2: masked out, old 3.0 kept (T's 99 ignored). *)
  ()

let test_mask_replace () =
  let mask = mask_of [ true; true; false; false; true ] in
  check alist "replace clears masked-out old entries"
    [ (1, 10.0) ]
    (write ~mask ~replace:true [ (0, 1.0); (2, 3.0) ] [ (1, 10.0); (2, 99.0) ])

let test_complemented_mask () =
  let mask = mask_of ~complemented:true [ true; true; false; false; true ] in
  check alist "complement inverts the allowed set"
    [ (0, 1.0); (2, 99.0) ]
    (write ~mask [ (0, 1.0); (2, 3.0) ] [ (1, 10.0); (2, 99.0) ])

let test_mask_value_coercion () =
  (* a mask entry stored as 0 is mask-false *)
  let m = Svector.of_coo f64 5 [ (0, 1.0); (1, 0.0) ] in
  let mask = Mask.vmask m in
  check alist "stored zero in mask is false"
    [ (0, 10.0) ]
    (write ~mask [] [ (0, 10.0); (1, 11.0); (2, 12.0) ])

let test_accum_with_mask_and_replace () =
  let mask = mask_of [ true; false; true; false; false ] in
  check alist "accum + mask + replace"
    [ (0, 3.0) ]
    (write ~mask ~replace:true
       ~accum:(Binop.plus f64)
       [ (0, 1.0); (1, 5.0) ]
       [ (0, 2.0) ])

(* Random equivalence with the dense model. *)

let qcheck_write_vector =
  let gen =
    QCheck.Gen.(
      Helpers.vec_gen 6 >>= fun c ->
      Helpers.vec_gen 6 >>= fun t ->
      Helpers.vmask_gen 6 >>= fun mask ->
      Helpers.accum_gen >>= fun accum ->
      bool >|= fun replace -> (c, t, mask, accum, replace))
  in
  Helpers.qtest ~count:500 "write_vector matches dense model"
    (Helpers.arb gen) (fun (c, t, mask, accum, replace) ->
      let out = Dense_ref.svector_of_vec f64 c in
      Output.write_vector ~mask ~accum ~replace ~out
        ~t:(Dense_ref.entries_of_vec t);
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (Dense_ref.svector_of_vec f64 expected))

let qcheck_write_matrix =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 4 5 >>= fun c ->
      Helpers.mat_gen 4 5 >>= fun t ->
      Helpers.mmask_gen 4 5 >>= fun mask ->
      Helpers.accum_gen >>= fun accum ->
      bool >|= fun replace -> (c, t, mask, accum, replace))
  in
  Helpers.qtest ~count:500 "write_matrix matches dense model"
    (Helpers.arb gen) (fun (c, t, mask, accum, replace) ->
      let out = Dense_ref.smatrix_of_mat f64 4 5 c in
      Output.write_matrix ~mask ~accum ~replace ~out
        ~t:(Dense_ref.rows_of_mat t);
      let expected =
        Dense_ref.write_mat ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Smatrix.equal out (Dense_ref.smatrix_of_mat f64 4 5 expected))

let suite =
  [ Alcotest.test_case "no mask, no accum" `Quick test_no_mask_no_accum;
    Alcotest.test_case "no mask, accum" `Quick test_no_mask_accum;
    Alcotest.test_case "mask merge" `Quick test_mask_merge;
    Alcotest.test_case "mask replace" `Quick test_mask_replace;
    Alcotest.test_case "complemented mask" `Quick test_complemented_mask;
    Alcotest.test_case "mask value coercion" `Quick test_mask_value_coercion;
    Alcotest.test_case "accum+mask+replace" `Quick
      test_accum_with_mask_and_replace;
    Helpers.to_alcotest qcheck_write_vector;
    Helpers.to_alcotest qcheck_write_matrix;
  ]
