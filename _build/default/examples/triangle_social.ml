(* Clustering in a social network: triangle counting (paper Fig. 5) and
   the global clustering coefficient on an Erdős–Rényi "friendship"
   graph, with the masked-mxm optimization doing the heavy lifting.

   Run with: dune exec examples/triangle_social.exe *)

open Gbtl

let () =
  let n = 600 in
  let rng = Graphs.Rng.create ~seed:123 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let friends = Graphs.Edge_list.symmetrize g in
  let adj = Graphs.Convert.bool_adjacency friends in
  Printf.printf "social graph: %d people, %d friendships\n" n
    (Smatrix.nvals adj / 2);

  let l = Algorithms.Triangle.of_undirected adj in
  let t0 = Unix.gettimeofday () in
  let triangles = Algorithms.Triangle.native l in
  let t1 = Unix.gettimeofday () in
  Printf.printf "triangles: %d (%.1f ms, masked dot-product kernel)\n"
    triangles
    (1000.0 *. (t1 -. t0));

  (* wedges = sum over v of deg(v) choose 2; clustering = 3*tri/wedges *)
  let wedges =
    Array.fold_left
      (fun acc d -> acc + (d * (d - 1) / 2))
      0
      (Utilities.row_degrees adj)
  in
  Printf.printf "wedges: %d\n" wedges;
  Printf.printf "global clustering coefficient: %.4f\n"
    (3.0 *. float_of_int triangles /. float_of_int (max 1 wedges));

  (* the DSL program of Fig. 5a *)
  let tri_dsl = Algorithms.Triangle.dsl (Ogb.Container.of_smatrix l) in
  Printf.printf "DSL tier counts %g (agrees: %b)\n" tri_dsl
    (int_of_float tri_dsl = triangles)
