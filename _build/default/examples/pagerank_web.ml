(* Ranking a synthetic web graph: PageRank over an RMAT "link graph",
   comparing the DSL program (paper Fig. 7) with native GBTL (Fig. 8)
   and printing the top pages.

   Run with: dune exec examples/pagerank_web.exe *)

open Gbtl

let () =
  let rng = Graphs.Rng.create ~seed:7 in
  let g = Graphs.Generators.rmat rng ~scale:9 ~edge_factor:12 in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  Printf.printf "web graph: %d pages, %d links\n" (Smatrix.nrows adj)
    (Smatrix.nvals adj);

  let t0 = Unix.gettimeofday () in
  let ranks, iters = Algorithms.Pagerank.native adj in
  let t1 = Unix.gettimeofday () in
  Printf.printf "native PageRank converged in %d iterations (%.1f ms)\n" iters
    (1000.0 *. (t1 -. t0));

  let top =
    List.sort (fun (_, a) (_, b) -> compare b a)
      (List.rev (Svector.fold (fun acc i r -> (i, r) :: acc) [] ranks))
  in
  print_endline "top 10 pages:";
  List.iteri
    (fun k (page, rank) ->
      if k < 10 then Printf.printf "  %2d. page %4d  rank %.6f\n" (k + 1) page rank)
    top;

  let t2 = Unix.gettimeofday () in
  let ranks_dsl, iters_dsl =
    Algorithms.Pagerank.dsl (Ogb.Container.of_smatrix adj)
  in
  let t3 = Unix.gettimeofday () in
  Printf.printf "DSL PageRank: %d iterations (%.1f ms)\n" iters_dsl
    (1000.0 *. (t3 -. t2));
  let drift =
    List.fold_left
      (fun acc (i, r) ->
        match Svector.get ranks i with
        | Some r' -> max acc (abs_float (r -. r'))
        | None -> infinity)
      0.0
      (Algorithms.Pagerank.ranks_of_container ranks_dsl)
  in
  Printf.printf "max |DSL - native| = %g\n" drift
