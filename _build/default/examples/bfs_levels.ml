(* Reachability analysis on a scale-free network: run BFS from a hub
   vertex of an RMAT graph and report the level histogram — the kind of
   frontier-expansion workload the paper's Fig. 1 motivates.

   Run with: dune exec examples/bfs_levels.exe *)

open Gbtl

let () =
  let rng = Graphs.Rng.create ~seed:2018 in
  let g = Graphs.Generators.rmat rng ~scale:10 ~edge_factor:8 in
  let adj = Graphs.Convert.bool_adjacency g in
  let n = Smatrix.nrows adj in
  Printf.printf "RMAT graph: %d vertices, %d edges\n" n (Smatrix.nvals adj);

  (* pick the vertex with the largest out-degree as the source *)
  let degrees = Utilities.row_degrees adj in
  let hub = ref 0 in
  Array.iteri (fun v d -> if d > degrees.(!hub) then hub := v) degrees;
  Printf.printf "source: hub vertex %d (out-degree %d)\n" !hub degrees.(!hub);

  let levels = Algorithms.Bfs.native adj ~src:!hub in
  let reached = Svector.nvals levels in
  Printf.printf "reached %d/%d vertices\n" reached n;

  let hist = Hashtbl.create 16 in
  Svector.iter
    (fun _ l ->
      Hashtbl.replace hist l (1 + Option.value ~default:0 (Hashtbl.find_opt hist l)))
    levels;
  let max_level = Hashtbl.fold (fun l _ acc -> max l acc) hist 0 in
  print_endline "level histogram (level: vertices):";
  for l = 1 to max_level do
    let count = Option.value ~default:0 (Hashtbl.find_opt hist l) in
    Printf.printf "  %2d: %6d %s\n" l count
      (String.make (min 60 (count * 60 / max 1 reached)) '#')
  done;

  (* cross-check through the DSL tier *)
  let levels_dsl =
    Algorithms.Bfs.dsl (Ogb.Container.of_smatrix adj) ~src:!hub
  in
  let same =
    Algorithms.Bfs.levels_of_svector levels
    = Algorithms.Bfs.levels_of_container levels_dsl
  in
  Printf.printf "DSL tier agrees with native: %b\n" same
