(* The tier-1 benchmark programs rendered as the Python-like source they
   encode — compare with the paper's Figs. 2b, 4a, 5a and 7, then watch
   one of them run through the interpreter.

   Run with: dune exec examples/tier1_listings.exe *)

let () =
  print_endline "=== BFS (paper Fig. 2b) ===";
  print_endline (Minivm.Pprint.program Algorithms.Bfs.vm_program);
  print_endline "=== SSSP (paper Fig. 4a) ===";
  print_endline (Minivm.Pprint.program Algorithms.Sssp.vm_program);
  print_endline "=== Triangle counting (paper Fig. 5a) ===";
  print_endline (Minivm.Pprint.program Algorithms.Triangle.vm_program);
  print_endline "=== PageRank (paper Fig. 7) ===";
  print_endline (Minivm.Pprint.program Algorithms.Pagerank.vm_program);

  print_endline "=== running the interpreted BFS on the Fig. 1 graph ===";
  let edges =
    [ (0, 1); (0, 3); (1, 4); (1, 6); (2, 5); (3, 0); (3, 2); (4, 5);
      (5, 2); (6, 2); (6, 3); (6, 4) ]
  in
  let graph =
    Ogb.Container.of_edge_list ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Bool)
      (Graphs.Edge_list.of_pairs ~nvertices:7 edges)
  in
  let levels = Algorithms.Bfs.vm_loops graph ~src:3 in
  List.iter
    (fun (v, l) -> Printf.printf "  vertex %d: level %d\n" v l)
    (Algorithms.Bfs.levels_of_container levels)
