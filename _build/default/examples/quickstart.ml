(* Quickstart: the DSL in a nutshell — containers, operator contexts,
   deferred expressions, masks.  Mirrors the paper's introductory
   examples (Figs. 2-5).

   Run with: dune exec examples/quickstart.exe *)

open Ogb
open Ogb.Ops.Infix

let () =
  (* Containers copy from plain data, like gb.Matrix([[...]]) (Fig. 3a). *)
  let a = Container.matrix_dense [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let u = Container.vector_dense [ 10.0; 100.0 ] in
  Printf.printf "A = %s\n" (Container.to_string a);
  Printf.printf "u = %s\n" (Container.to_string u);

  (* w = A @ u under the default arithmetic semiring. *)
  let w = Container.vector_empty 2 in
  Ops.set w (!!a @. !!u);
  Printf.printf "A @ u = %s\n" (Container.to_string w);

  (* The semiring comes from the context: min-plus turns @ into shortest
     path relaxation (Fig. 4). *)
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Ops.set w (!!a @. !!u));
  Printf.printf "A min.+ u = %s\n" (Container.to_string w);

  (* Expressions are deferred: operators are captured at construction,
     evaluation happens at assignment (paper "deferred operator
     evaluation"). *)
  let expr = Context.with_ops [ Context.binary "Minus" ] (fun () -> !!u +: !!u) in
  Ops.set w expr;
  Printf.printf "u eWiseAdd(Minus) u = %s\n" (Container.to_string w);

  (* Masks select which outputs are written; ~ complements (Fig. 2). *)
  let m = Container.vector_coo ~size:2 [ (0, 1.0) ] in
  let out = Container.vector_coo ~size:2 [ (0, -1.0); (1, -1.0) ] in
  Ops.set ~mask:(Ops.Mask m) out (!!a @. !!u);
  Printf.printf "masked write: %s\n" (Container.to_string out);
  Ops.set ~mask:(~~m) out (!!a @. !!u);
  Printf.printf "complement:   %s\n" (Container.to_string out);

  (* Reduce terminates an expression to a scalar. *)
  Printf.printf "reduce(A) = %g\n" (Ops.reduce !!a);

  (* A three-line BFS on the Fig. 1 graph. *)
  let edges =
    [ (0, 1); (0, 3); (1, 4); (1, 6); (2, 5); (3, 0); (3, 2); (4, 5);
      (5, 2); (6, 2); (6, 3); (6, 4) ]
  in
  let graph =
    Container.of_edge_list ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Bool)
      (Graphs.Edge_list.of_pairs ~nvertices:7 edges)
  in
  let levels = Algorithms.Bfs.dsl graph ~src:3 in
  Printf.printf "BFS levels from vertex 3: %s\n" (Container.to_string levels)
