(* Shortest travel times on a road network: a 2-D grid with random
   congestion weights, solved by min-plus relaxation (paper Fig. 4).

   Run with: dune exec examples/sssp_roadmap.exe *)

open Gbtl

let rows = 24
let cols = 24

let () =
  let rng = Graphs.Rng.create ~seed:99 in
  let grid = Graphs.Generators.grid2d ~rows ~cols in
  (* random travel time per road segment: 1..9 minutes *)
  let roads =
    Graphs.Edge_list.map_weights
      (fun _ _ _ -> 1.0 +. float_of_int (Graphs.Rng.int rng 9))
      grid
  in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 roads in
  let src = 0 in
  Printf.printf "road grid %dx%d (%d segments), from corner %d\n" rows cols
    (Smatrix.nvals adj) src;

  let t0 = Unix.gettimeofday () in
  let dist = Algorithms.Sssp.native adj ~src in
  let t1 = Unix.gettimeofday () in
  Printf.printf "solved in %.1f ms\n" (1000.0 *. (t1 -. t0));

  let far = Svector.fold (fun acc _ d -> max acc d) 0.0 dist in
  Printf.printf "farthest corner takes %.0f minutes\n"
    (Option.value ~default:nan (Svector.get dist ((rows * cols) - 1)));
  Printf.printf "maximum travel time anywhere: %.0f minutes\n" far;

  (* small heat map of travel times *)
  print_endline "travel-time map (0-9 scaled):";
  for r = 0 to rows - 1 do
    print_string "  ";
    for c = 0 to cols - 1 do
      match Svector.get dist ((r * cols) + c) with
      | Some d -> print_char (Char.chr (Char.code '0' + min 9 (int_of_float (d *. 9.0 /. far))))
      | None -> print_char '.'
    done;
    print_newline ()
  done;

  (* the same through the PyGB-style program *)
  let dist_dsl = Algorithms.Sssp.dsl (Ogb.Container.of_smatrix adj) ~src in
  let agree =
    List.for_all
      (fun (i, d) -> Svector.get dist i = Some d)
      (Algorithms.Sssp.distances_of_container dist_dsl)
  in
  Printf.printf "DSL tier agrees with native: %b\n" agree
