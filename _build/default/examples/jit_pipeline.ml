(* A look inside the dynamic-compilation pipeline (paper Fig. 9): run one
   DSL operation, then show the generated kernel source, the cache state
   and the dispatch statistics; run it again and watch the cache hit.

   Run with: dune exec examples/jit_pipeline.exe *)

open Ogb
open Ogb.Ops.Infix

let () =
  Jit.Jit_stats.reset ();
  Printf.printf "JIT backend: %s\n" (Jit.Native_backend.explain ());
  Printf.printf "effective:   %s\n\n"
    (match Jit.Dispatch.effective_backend () with
    | `Native -> "native (ocamlopt -shared + Dynlink)"
    | `Closure -> "closure specialization");

  let a = Container.matrix_dense [ [ 0.0; 2.0 ]; [ 5.0; 0.0 ] ] in
  let u = Container.vector_dense [ 1.0; 1.0 ] in
  let w = Container.vector_empty 2 in

  print_endline "first evaluation of  w = A min.+ u :";
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Ops.set w (!!a @. !!u));
  Format.printf "  %a@." Jit.Jit_stats.pp (Jit.Jit_stats.snapshot ());
  Printf.printf "  result: %s\n\n" (Container.to_string w);

  print_endline "second evaluation (same signature):";
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Ops.set w (!!a @. !!u));
  Format.printf "  %a@." Jit.Jit_stats.pp (Jit.Jit_stats.snapshot ());

  print_endline "\na different dtype is a different kernel:";
  let ai =
    Container.matrix_dense ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Int64)
      [ [ 0.0; 2.0 ]; [ 5.0; 0.0 ] ]
  in
  let ui = Container.vector_dense ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Int64) [ 1.0; 1.0 ] in
  let wi = Container.vector_empty ~dtype:(Gbtl.Dtype.P Gbtl.Dtype.Int64) 2 in
  Context.with_ops [ Context.semiring "MinPlus" ] (fun () ->
      Ops.set wi (!!ai @. !!ui));
  Format.printf "  %a@." Jit.Jit_stats.pp (Jit.Jit_stats.snapshot ());

  (* show the generated source for the kernel we just used *)
  print_endline "\ngenerated kernel source (mxv, double, MinPlus):";
  (match
     Jit.Codegen.mxv_source ~dtype:"double" ~sr:Jit.Op_spec.min_plus
       ~key:"demo"
   with
  | Some src ->
    String.split_on_char '\n' src
    |> List.iteri (fun i line -> if i < 12 then Printf.printf "  %s\n" line);
    print_endline "  ..."
  | None -> print_endline "  (codegen unavailable for this combination)");

  Printf.printf "\nkernel cache directory: %s\n" (Jit.Disk_cache.dir ());
  Printf.printf "kernels in memory: %d\n" (Jit.Dispatch.memory_cache_size ())
