examples/tier1_listings.ml: Algorithms Gbtl Graphs List Minivm Ogb Printf
