examples/triangle_social.ml: Algorithms Array Gbtl Graphs Ogb Printf Smatrix Unix Utilities
