examples/sssp_roadmap.ml: Algorithms Char Dtype Gbtl Graphs List Ogb Option Printf Smatrix Svector Unix
