examples/sssp_roadmap.mli:
