examples/pagerank_web.mli:
