examples/quickstart.mli:
