examples/triangle_social.mli:
