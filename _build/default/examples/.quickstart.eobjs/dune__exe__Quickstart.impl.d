examples/quickstart.ml: Algorithms Container Context Gbtl Graphs Ogb Ops Printf
