examples/pagerank_web.ml: Algorithms Dtype Gbtl Graphs List Ogb Printf Smatrix Svector Unix
