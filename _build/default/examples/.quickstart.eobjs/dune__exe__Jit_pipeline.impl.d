examples/jit_pipeline.ml: Container Context Format Gbtl Jit List Ogb Ops Printf String
