examples/bfs_levels.ml: Algorithms Array Gbtl Graphs Hashtbl Ogb Option Printf Smatrix String Svector Utilities
