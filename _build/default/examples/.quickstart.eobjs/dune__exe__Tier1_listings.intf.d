examples/tier1_listings.mli:
