examples/bfs_levels.mli:
