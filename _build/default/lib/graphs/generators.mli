(** Graph generators standing in for the NumPy/SciPy/NetworkX routines
    the paper constructs containers from (Fig. 3b), including the
    evaluation workload: Erdős–Rényi graphs with |E| = O(|V|^1.5)
    (Figs. 10–11). *)

val erdos_renyi_gnm :
  ?self_loops:bool ->
  ?weight:(Rng.t -> float) ->
  Rng.t ->
  nvertices:int ->
  nedges:int ->
  Edge_list.t
(** G(n, M): exactly [nedges] distinct directed edges drawn uniformly.
    Default weight 1.  @raise Invalid_argument if more edges than pairs. *)

val erdos_renyi_paper : Rng.t -> nvertices:int -> Edge_list.t
(** The paper's workload: |E| = ⌈|V|^1.5⌉ (clamped to the possible
    maximum), unit weights. *)

val balanced_tree : branching:int -> height:int -> Edge_list.t
(** NetworkX [balanced_tree(r, h)]: edges parent→child. *)

val path : int -> Edge_list.t
val cycle : int -> Edge_list.t
val star : int -> Edge_list.t
(** [star n]: vertex 0 connected to 1..n-1. *)

val complete : int -> Edge_list.t
val grid2d : rows:int -> cols:int -> Edge_list.t
(** 4-neighbour grid, both directions. *)

val watts_strogatz :
  Rng.t -> nvertices:int -> k:int -> beta:float -> Edge_list.t
(** Small-world graph: ring lattice with [k] nearest neighbours per side
    pair ([k] even), each edge rewired with probability [beta].  Both
    edge directions are emitted (symmetric). *)

val barabasi_albert : Rng.t -> nvertices:int -> m:int -> Edge_list.t
(** Preferential attachment: each new vertex attaches to [m] existing
    vertices with probability proportional to degree.  Symmetric. *)

val rmat :
  ?a:float -> ?b:float -> ?c:float ->
  Rng.t ->
  scale:int ->
  edge_factor:int ->
  Edge_list.t
(** Recursive-matrix (Graph500-style) generator: [2^scale] vertices,
    [edge_factor * 2^scale] edge samples (duplicates collapse on
    conversion).  Defaults a=0.57, b=0.19, c=0.19. *)
