(** The "foreign container" representation: a plain weighted edge list, as
    a NetworkX graph or SciPy COO would hand over.  Generators produce
    these; {!Convert} turns them into GraphBLAS containers (the copying
    constructor of paper Fig. 3b). *)

type t = {
  nvertices : int;
  edges : (int * int * float) list;  (** (src, dst, weight) *)
}

val nedges : t -> int
val reverse : t -> t
val symmetrize : t -> t
(** Adds the reverse of every edge (duplicates collapse on conversion). *)

val map_weights : (int -> int -> float -> float) -> t -> t
val of_pairs : nvertices:int -> (int * int) list -> t
(** Unit weights. *)
