(** Deterministic SplitMix64 PRNG — benchmark workloads must be
    reproducible across runs and machines, so we avoid the stdlib's
    unsealed [Random] state. *)

type t

val create : seed:int -> t
val copy : t -> t
val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
