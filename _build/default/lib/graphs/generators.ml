let erdos_renyi_gnm ?(self_loops = false) ?(weight = fun _ -> 1.0) rng
    ~nvertices ~nedges =
  let possible =
    if self_loops then nvertices * nvertices else nvertices * (nvertices - 1)
  in
  if nedges > possible then
    invalid_arg
      (Printf.sprintf "erdos_renyi_gnm: %d edges exceed the %d possible"
         nedges possible);
  let seen = Hashtbl.create (2 * nedges) in
  let edges = ref [] in
  let n = ref 0 in
  while !n < nedges do
    let s = Rng.int rng nvertices and d = Rng.int rng nvertices in
    if (self_loops || s <> d) && not (Hashtbl.mem seen (s, d)) then begin
      Hashtbl.add seen (s, d) ();
      edges := (s, d, weight rng) :: !edges;
      incr n
    end
  done;
  { Edge_list.nvertices; edges = !edges }

let erdos_renyi_paper rng ~nvertices =
  let nedges =
    min
      (int_of_float (ceil (float_of_int nvertices ** 1.5)))
      (nvertices * (nvertices - 1))
  in
  erdos_renyi_gnm rng ~nvertices ~nedges

let balanced_tree ~branching ~height =
  if branching < 1 || height < 0 then
    invalid_arg "balanced_tree: branching >= 1, height >= 0 required";
  (* number of vertices: (r^(h+1) - 1) / (r - 1), or h+1 for r = 1 *)
  let nvertices =
    if branching = 1 then height + 1
    else
      (int_of_float (float_of_int branching ** float_of_int (height + 1)) - 1)
      / (branching - 1)
  in
  (* children of v in a 0-indexed complete r-ary tree: v*r+1 .. v*r+r *)
  let edges = ref [] in
  for v = 0 to nvertices - 1 do
    for k = 1 to branching do
      let child = (v * branching) + k in
      if child < nvertices then edges := (v, child, 1.0) :: !edges
    done
  done;
  { Edge_list.nvertices; edges = List.rev !edges }

let path n =
  { Edge_list.nvertices = n;
    edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1, 1.0)) }

let cycle n =
  { Edge_list.nvertices = n;
    edges = List.init n (fun i -> (i, (i + 1) mod n, 1.0)) }

let star n =
  { Edge_list.nvertices = n;
    edges = List.init (max 0 (n - 1)) (fun i -> (0, i + 1, 1.0)) }

let complete n =
  let edges = ref [] in
  for s = n - 1 downto 0 do
    for d = n - 1 downto 0 do
      if s <> d then edges := (s, d, 1.0) :: !edges
    done
  done;
  { Edge_list.nvertices = n; edges = !edges }

let grid2d ~rows ~cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then begin
        edges := (id r c, id r (c + 1), 1.0) :: !edges;
        edges := (id r (c + 1), id r c, 1.0) :: !edges
      end;
      if r + 1 < rows then begin
        edges := (id r c, id (r + 1) c, 1.0) :: !edges;
        edges := (id (r + 1) c, id r c, 1.0) :: !edges
      end
    done
  done;
  { Edge_list.nvertices = rows * cols; edges = !edges }

let watts_strogatz rng ~nvertices ~k ~beta =
  if k mod 2 <> 0 || k < 2 then
    invalid_arg "watts_strogatz: k must be even and >= 2";
  if k >= nvertices then invalid_arg "watts_strogatz: k must be < n";
  (* undirected edge set as (min, max) pairs *)
  let seen = Hashtbl.create (nvertices * k) in
  let norm u v = if u < v then (u, v) else (v, u) in
  let add u v = Hashtbl.replace seen (norm u v) () in
  let mem u v = Hashtbl.mem seen (norm u v) in
  for v = 0 to nvertices - 1 do
    for j = 1 to k / 2 do
      add v ((v + j) mod nvertices)
    done
  done;
  (* rewire: for each original lattice edge, with prob beta replace its
     far endpoint with a uniform non-duplicate target *)
  for v = 0 to nvertices - 1 do
    for j = 1 to k / 2 do
      let w = (v + j) mod nvertices in
      if Rng.float rng < beta && mem v w then begin
        let attempts = ref 0 in
        let continue_ = ref true in
        while !continue_ && !attempts < 32 do
          incr attempts;
          let t = Rng.int rng nvertices in
          if t <> v && not (mem v t) then begin
            Hashtbl.remove seen (norm v w);
            add v t;
            continue_ := false
          end
        done
      end
    done
  done;
  let edges =
    Hashtbl.fold (fun (u, v) () acc -> (u, v, 1.0) :: (v, u, 1.0) :: acc)
      seen []
  in
  { Edge_list.nvertices; edges }

let barabasi_albert rng ~nvertices ~m =
  if m < 1 || m >= nvertices then
    invalid_arg "barabasi_albert: need 1 <= m < n";
  (* repeated-target list: each endpoint appearance weights selection *)
  let targets = ref [] in
  let seen = Hashtbl.create (nvertices * m) in
  let norm u v = if u < v then (u, v) else (v, u) in
  let edges = ref [] in
  let add u v =
    if u <> v && not (Hashtbl.mem seen (norm u v)) then begin
      Hashtbl.replace seen (norm u v) ();
      edges := (u, v, 1.0) :: (v, u, 1.0) :: !edges;
      targets := u :: v :: !targets;
      true
    end
    else false
  in
  (* seed: a clique over the first m+1 vertices *)
  for u = 0 to m do
    for v = u + 1 to m do
      ignore (add u v)
    done
  done;
  let pool = ref (Array.of_list !targets) in
  for v = m + 1 to nvertices - 1 do
    let added = ref 0 and attempts = ref 0 in
    while !added < m && !attempts < 64 * m do
      incr attempts;
      let t = !pool.(Rng.int rng (Array.length !pool)) in
      if add v t then incr added
    done;
    pool := Array.of_list !targets
  done;
  { Edge_list.nvertices; edges = !edges }

let rmat ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) rng ~scale ~edge_factor =
  if a +. b +. c >= 1.0 then invalid_arg "rmat: a + b + c must be < 1";
  let n = 1 lsl scale in
  let sample () =
    let r = ref 0 and c_ = ref 0 in
    for _bit = 1 to scale do
      let p = Rng.float rng in
      let right, down =
        if p < a then (0, 0)
        else if p < a +. b then (1, 0)
        else if p < a +. b +. c then (0, 1)
        else (1, 1)
      in
      r := (!r lsl 1) lor down;
      c_ := (!c_ lsl 1) lor right
    done;
    (!r, !c_)
  in
  let edges = ref [] in
  for _ = 1 to edge_factor * n do
    let r, c_ = sample () in
    if r <> c_ then edges := (r, c_, 1.0) :: !edges
  done;
  { Edge_list.nvertices = n; edges = !edges }
