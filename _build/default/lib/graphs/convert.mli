(** Conversions between foreign representations and GraphBLAS containers —
    the copying constructors of paper Fig. 3 ([gb.Matrix(nx.balanced_tree
    (...))] etc.). *)

val matrix_of_edges :
  ?dup:'a Gbtl.Binop.t -> 'a Gbtl.Dtype.t -> Edge_list.t -> 'a Gbtl.Smatrix.t
(** Adjacency matrix; weights cast from float into the dtype; parallel
    edges combined with [dup] (default last-wins). *)

val bool_adjacency : Edge_list.t -> bool Gbtl.Smatrix.t
(** Unweighted adjacency (every edge stored as [true]). *)

val edges_of_matrix : 'a Gbtl.Smatrix.t -> Edge_list.t
(** Weights cast to float. *)

val vector_of_list : 'a Gbtl.Dtype.t -> float list -> 'a Gbtl.Svector.t
(** Dense copy of a "Python list" (every cell stored). *)

val matrix_of_lists : 'a Gbtl.Dtype.t -> float list list -> 'a Gbtl.Smatrix.t
(** Dense copy of nested lists (paper Fig. 3a).
    @raise Gbtl.Smatrix.Dimension_mismatch on ragged input. *)

val out_degrees : 'a Gbtl.Smatrix.t -> int Gbtl.Svector.t
(** Stored-entry out-degree per vertex, as an Int64 vector (degree zero
    vertices get no entry). *)
