type t = { nvertices : int; edges : (int * int * float) list }

let nedges t = List.length t.edges

let reverse t =
  { t with edges = List.map (fun (s, d, w) -> (d, s, w)) t.edges }

let symmetrize t =
  { t with
    edges =
      t.edges @ List.filter_map (fun (s, d, w) -> if s = d then None else Some (d, s, w)) t.edges
  }

let map_weights f t =
  { t with edges = List.map (fun (s, d, w) -> (s, d, f s d w)) t.edges }

let of_pairs ~nvertices pairs =
  { nvertices; edges = List.map (fun (s, d) -> (s, d, 1.0)) pairs }
