lib/graphs/convert.ml: Array Dtype Edge_list Gbtl List Smatrix Svector
