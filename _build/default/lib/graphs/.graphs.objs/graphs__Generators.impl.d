lib/graphs/generators.ml: Array Edge_list Hashtbl List Printf Rng
