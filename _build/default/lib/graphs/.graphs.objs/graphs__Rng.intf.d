lib/graphs/rng.mli:
