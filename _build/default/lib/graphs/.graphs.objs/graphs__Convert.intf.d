lib/graphs/convert.mli: Edge_list Gbtl
