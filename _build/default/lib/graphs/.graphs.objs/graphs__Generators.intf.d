lib/graphs/generators.mli: Edge_list Rng
