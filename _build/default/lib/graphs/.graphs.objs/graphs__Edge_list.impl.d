lib/graphs/edge_list.ml: List
