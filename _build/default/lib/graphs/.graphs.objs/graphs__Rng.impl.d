lib/graphs/rng.ml: Array Int64
