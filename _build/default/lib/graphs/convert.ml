open Gbtl

let matrix_of_edges ?dup dt (g : Edge_list.t) =
  let triples =
    List.map
      (fun (s, d, w) -> (s, d, Dtype.of_float dt w))
      g.Edge_list.edges
  in
  Smatrix.of_coo ?dup dt g.Edge_list.nvertices g.Edge_list.nvertices triples

let bool_adjacency (g : Edge_list.t) =
  let triples = List.map (fun (s, d, _) -> (s, d, true)) g.Edge_list.edges in
  Smatrix.of_coo Dtype.Bool g.Edge_list.nvertices g.Edge_list.nvertices triples

let edges_of_matrix m =
  let dt = Smatrix.dtype m in
  { Edge_list.nvertices = Smatrix.nrows m;
    edges =
      List.rev
        (Smatrix.fold
           (fun acc r c x -> (r, c, Dtype.to_float dt x) :: acc)
           [] m) }

let vector_of_list dt l =
  Svector.of_dense dt (Array.of_list (List.map (Dtype.of_float dt) l))

let matrix_of_lists dt rows =
  Smatrix.of_dense dt
    (Array.of_list
       (List.map
          (fun row -> Array.of_list (List.map (Dtype.of_float dt) row))
          rows))

let out_degrees m =
  let v = Svector.create Dtype.Int64 (Smatrix.nrows m) in
  for r = 0 to Smatrix.nrows m - 1 do
    let d = Smatrix.row_nvals m r in
    if d > 0 then Svector.set v r d
  done;
  v
