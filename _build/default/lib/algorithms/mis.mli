(** Maximal independent set — Luby's randomized algorithm in GraphBLAS
    form (a further extension in the spirit of the paper's §VIII: it
    exercises masked assigns, value-coerced masks and the MaxSelect2nd
    semiring, none of which the four benchmark algorithms touch).

    The input adjacency must be symmetric and loop-free. *)

open Gbtl

val native : ?seed:int -> bool Smatrix.t -> bool Svector.t
(** Membership vector: a stored [true] per selected vertex. *)

val is_independent : bool Smatrix.t -> bool Svector.t -> bool
val is_maximal : bool Smatrix.t -> bool Svector.t -> bool
