open Gbtl

(* The generic-library tier (paper Fig. 4b verbatim). *)
let generic_inplace graph ~path =
  let min_plus = Semiring.min_plus Dtype.FP64 in
  let min_accum = Binop.min Dtype.FP64 in
  for _k = 0 to Smatrix.nrows graph - 1 do
    (* path[None] += graph.T min.+ path *)
    Matmul.mxv ~accum:min_accum ~transpose_a:true min_plus ~out:path graph
      path
  done

let generic graph ~src =
  let path = Svector.create Dtype.FP64 (Smatrix.nrows graph) in
  Svector.set path src 0.0;
  generic_inplace graph ~path;
  path

(* Tier 3: the same loop over the specialized kernels. *)
let native_inplace graph ~path =
  let min_accum = Binop.min Dtype.FP64 in
  for _k = 0 to Smatrix.nrows graph - 1 do
    let t =
      Jit.Kernels.mxv Dtype.FP64 Jit.Op_spec.min_plus ~transpose:true graph
        path
    in
    Output.write_vector ~mask:Mask.No_vmask ~accum:(Some min_accum)
      ~replace:false ~out:path ~t
  done

let native graph ~src =
  let path = Svector.create Dtype.FP64 (Smatrix.nrows graph) in
  Svector.set path src 0.0;
  native_inplace graph ~path;
  path

let dsl graph ~src =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = fst (Container.shape graph) in
  let path = Container.vector_coo ~size:n [ (src, 0.0) ] in
  (* with gb.MinPlusSemiring, gb.Accumulator("Min"):
       for i in range(graph.shape[0]): path[None] += graph.T @ path *)
  Context.with_ops
    [ Context.semiring "MinPlus"; Context.accum "Min" ]
    (fun () ->
      for _i = 0 to n - 1 do
        Ops.update path (tr !!graph @. !!path)
      done);
  path

let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  [ Def
      ( "sssp",
        [ "graph"; "path" ],
        [ With
            ( [ Call (Var "Semiring", [ Const (Minivm.Value.Str "MinPlus") ]);
                Call (Var "Accumulator", [ Const (Minivm.Value.Str "Min") ]) ],
              [ For
                  ( "i",
                    Index (Attr (Var "graph", "shape"), Const (Minivm.Value.Int 0)),
                    [ ExprStmt
                        (Method
                           ( Var "path",
                             "update",
                             [ Const Minivm.Value.Nil;
                               Binary ("@", Attr (Var "graph", "T"), Var "path")
                             ] )) ] ) ] );
          Return (Var "path") ] ) ]

let seed_path n src =
  Ogb.Container.vector_coo ~size:n [ (src, 0.0) ]

let vm_loops graph ~src =
  let n = fst (Ogb.Container.shape graph) in
  let path = seed_path n src in
  match
    Vm_runtime.call_program vm_program "sssp"
      [ Ogb.Vm_bridge.wrap_container graph; Ogb.Vm_bridge.wrap_container path ]
  with
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
  | _ -> path

let vm_whole graph ~src =
  let kernel =
    Vm_runtime.whole_algorithm ~name:"sssp" ~dtype:"double" (fun () ->
        Obj.repr (fun (g, s) -> native g ~src:s))
  in
  let f : float Smatrix.t * int -> float Svector.t = Obj.obj kernel in
  let env = Vm_runtime.fresh_env () in
  Minivm.Env.define env "sssp_compiled"
    (Minivm.Value.Builtin
       ( "sssp_compiled",
         fun args ->
           match args with
           | [ g; Minivm.Value.Int s ] ->
             let c = Ogb.Vm_bridge.unwrap_container g in
             let m = Ogb.Container.as_matrix Dtype.FP64 c in
             Ogb.Vm_bridge.wrap_container (Ogb.Container.of_svector (f (m, s)))
           | _ ->
             raise (Minivm.Value.Type_error "sssp_compiled: bad arguments") ));
  Minivm.Env.define env "g" (Ogb.Vm_bridge.wrap_container graph);
  Minivm.Env.define env "s" (Minivm.Value.Int src);
  let open Minivm.Ast in
  Minivm.Interp.exec_block env
    [ Assign ("result", Call (Var "sssp_compiled", [ Var "g"; Var "s" ])) ];
  Ogb.Vm_bridge.unwrap_container (Minivm.Env.lookup env "result")

let distances_of_container = Ogb.Container.vector_entries
