(** Single-source shortest paths by Bellman–Ford relaxation over the
    min-plus semiring (paper Fig. 4): n rounds of
    [path[None] += graphᵀ min.+ path].

    [path] carries current distances (source seeded with 0); vertices
    with no entry are unreached. *)

open Gbtl

val native : float Smatrix.t -> src:int -> float Svector.t
(** Tier 3: specialized kernels (see {!Bfs.native}'s doc). *)

val native_inplace : float Smatrix.t -> path:float Svector.t -> unit
(** The paper's exact signature: relax [nrows] times into [path]. *)

val generic : float Smatrix.t -> src:int -> float Svector.t
(** Fig. 4b against the polymorphic library — correctness reference. *)

val generic_inplace : float Smatrix.t -> path:float Svector.t -> unit

val dsl : Ogb.Container.t -> src:int -> Ogb.Container.t
val vm_program : Minivm.Ast.block
val vm_loops : Ogb.Container.t -> src:int -> Ogb.Container.t
val vm_whole : Ogb.Container.t -> src:int -> Ogb.Container.t

val distances_of_container : Ogb.Container.t -> (int * float) list
