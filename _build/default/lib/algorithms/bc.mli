(** Betweenness centrality (Brandes' algorithm in GraphBLAS form, the
    companion algorithm GBTL ships alongside the paper's four): a forward
    sweep of masked [vxm] frontier expansions recording per-depth
    frontiers and shortest-path counts, then a backward dependency
    accumulation of masked [mxv] / element-wise updates.

    Unweighted directed graphs; BC(v) = Σ_{s≠v≠t} σ_st(v) / σ_st. *)

open Gbtl

val native : ?sources:int list -> bool Smatrix.t -> float Svector.t
(** Dense centrality vector.  [sources] selects a batch (default: every
    vertex, i.e. exact BC). *)
