(** Shared plumbing for the tier-1 / tier-2 encodings: a MiniVM
    environment with the DSL bridge installed, and the one-dispatch
    "whole algorithm" kernels of tier 2 (a single interpreted call into a
    natively compiled algorithm, the paper's second experiment
    configuration). *)

val fresh_env : unit -> Minivm.Env.t
(** Builtins + DSL bridge installed. *)

val call_program :
  Minivm.Ast.block -> string -> Minivm.Value.t list -> Minivm.Value.t
(** [call_program program fn args] — load the program into a fresh
    environment and invoke its function [fn]. *)

val whole_algorithm :
  name:string -> dtype:string -> (unit -> Obj.t) -> Obj.t
(** Tier-2 dispatch: fetch (or "compile") the whole-algorithm kernel
    registered under [algo:<name>] — one JIT dispatch per algorithm
    invocation, closure backend. *)
