lib/algorithms/connected_components.ml: Binop Container Context Dtype Gbtl Hashtbl List Matmul Ogb Ops Semiring Smatrix Svector
