lib/algorithms/vm_runtime.mli: Minivm Obj
