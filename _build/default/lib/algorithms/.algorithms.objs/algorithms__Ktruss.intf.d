lib/algorithms/ktruss.mli: Gbtl Ogb Smatrix
