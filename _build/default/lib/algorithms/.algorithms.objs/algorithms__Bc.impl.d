lib/algorithms/bc.ml: Apply_reduce Array Binop Dtype Ewise Fun Gbtl List Mask Matmul Output Semiring Smatrix Svector Unaryop
