lib/algorithms/pagerank.mli: Gbtl Minivm Ogb Smatrix Svector
