lib/algorithms/vm_runtime.ml: Jit Minivm Ogb
