lib/algorithms/mis.ml: Array Assign Binop Dtype Ewise Gbtl Graphs Index_set Mask Matmul Output Semiring Smatrix Svector Utilities
