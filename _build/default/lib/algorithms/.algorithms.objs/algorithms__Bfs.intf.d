lib/algorithms/bfs.mli: Gbtl Minivm Ogb Smatrix Svector
