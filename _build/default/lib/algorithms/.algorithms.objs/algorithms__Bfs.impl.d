lib/algorithms/bfs.ml: Array Assign Container Context Dtype Gbtl Index_set Jit List Mask Matmul Minivm Obj Ogb Ops Output Semiring Smatrix Svector Vm_runtime
