lib/algorithms/sssp.mli: Gbtl Minivm Ogb Smatrix Svector
