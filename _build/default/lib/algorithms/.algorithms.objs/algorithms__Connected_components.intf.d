lib/algorithms/connected_components.mli: Gbtl Ogb Smatrix Svector
