lib/algorithms/triangle.ml: Apply_reduce Container Context Dtype Gbtl Mask Matmul Minivm Monoid Obj Ogb Ops Semiring Smatrix Utilities Vm_runtime
