lib/algorithms/triangle.mli: Gbtl Minivm Ogb Smatrix
