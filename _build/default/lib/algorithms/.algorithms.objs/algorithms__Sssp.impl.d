lib/algorithms/sssp.ml: Binop Container Context Dtype Gbtl Jit Mask Matmul Minivm Obj Ogb Ops Output Semiring Smatrix Svector Vm_runtime
