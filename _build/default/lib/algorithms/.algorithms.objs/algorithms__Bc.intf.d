lib/algorithms/bc.mli: Gbtl Smatrix Svector
