lib/algorithms/mis.mli: Gbtl Smatrix Svector
