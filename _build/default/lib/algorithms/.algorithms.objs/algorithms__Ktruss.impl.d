lib/algorithms/ktruss.ml: Container Context Dtype Gbtl Mask Matmul Ogb Ops Select Semiring Smatrix
