open Gbtl

(* The generic-library tier: the GBTL program of paper Fig. 2c against
   the polymorphic operations. *)
let generic graph ~src =
  let n = Smatrix.nrows graph in
  let frontier = Svector.create Dtype.Bool n in
  Svector.set frontier src true;
  let levels = Svector.create Dtype.Int64 n in
  let logical = Semiring.logical Dtype.Bool in
  let depth = ref 0 in
  while Svector.nvals frontier > 0 do
    incr depth;
    (* levels<frontier, merge> = depth *)
    Assign.vector_scalar
      ~mask:(Mask.vmask frontier)
      ~out:levels !depth Index_set.All;
    (* frontier<!levels, replace> = graphᵀ ⊕.⊗ frontier *)
    let lmask =
      Mask.Vmask
        { dense = Svector.to_bool_dense (Svector.cast ~into:Dtype.Bool levels);
          complemented = true }
    in
    Matmul.mxv ~mask:lmask ~replace:true ~transpose_a:true logical
      ~out:frontier graph frontier
  done;
  levels

(* Tier 3: the same loop over the specialized kernels. *)
let native graph ~src =
  let n = Smatrix.nrows graph in
  let frontier = Svector.create Dtype.Bool n in
  Svector.set frontier src true;
  let levels = Svector.create Dtype.Int64 n in
  let visited = Array.make n false in
  let depth = ref 0 in
  while Svector.nvals frontier > 0 do
    incr depth;
    (* levels<frontier, merge> = depth *)
    Assign.vector_scalar
      ~mask:(Mask.vmask frontier)
      ~out:levels !depth Index_set.All;
    Svector.iter (fun i _ -> visited.(i) <- true) frontier;
    (* frontier<!levels, replace> = graphᵀ ⊕.⊗ frontier *)
    let t = Jit.Kernels.mxv Dtype.Bool Jit.Op_spec.logical ~transpose:true graph frontier in
    Output.write_vector
      ~mask:(Mask.Vmask { dense = visited; complemented = true })
      ~accum:None ~replace:true ~out:frontier ~t
  done;
  levels

(* Tier "PyGB": deferred expressions + context stack (paper Fig. 2b). *)
let dsl graph ~src =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = fst (Container.shape graph) in
  let frontier =
    Container.vector_coo ~dtype:(Dtype.P Dtype.Bool) ~size:n [ (src, 1.0) ]
  in
  let levels = Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  let depth = ref 0 in
  while Container.nvals frontier > 0 do
    incr depth;
    (* levels[front][:] = depth *)
    Ops.assign_scalar ~mask:(Ops.Mask frontier) levels (float_of_int !depth);
    (* with gb.LogicalSemiring, gb.Replace:
         frontier[~levels] = graph.T @ frontier *)
    Context.with_ops
      [ Context.semiring "Logical"; Context.replace ]
      (fun () ->
        Ops.set ~mask:(~~levels) frontier (tr !!graph @. !!frontier))
  done;
  levels

(* Tier 1: the same program interpreted by the MiniVM. *)
let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  [ Def
      ( "bfs",
        [ "graph"; "frontier"; "levels" ],
        [ Assign ("depth", Const (Minivm.Value.Int 0));
          While
            ( Binary
                (">", Attr (Var "frontier", "nvals"), Const (Minivm.Value.Int 0)),
              [ Assign ("depth", Binary ("+", Var "depth", Const (Minivm.Value.Int 1)));
                (* levels[front][:] = depth *)
                SetIndex
                  (Index (Var "levels", Var "frontier"), Var "AllIndices", Var "depth");
                (* with gb.LogicalSemiring, gb.Replace: ... *)
                With
                  ( [ Call (Var "Semiring", [ Const (Minivm.Value.Str "Logical") ]);
                      Var "Replace" ],
                    [ SetIndex
                        ( Var "frontier",
                          Unary ("~", Var "levels"),
                          Binary ("@", Attr (Var "graph", "T"), Var "frontier")
                        ) ] ) ] );
          Return (Var "levels") ] ) ]

let vm_loops graph ~src =
  let open Ogb in
  let n = fst (Container.shape graph) in
  let frontier =
    Container.vector_coo ~dtype:(Dtype.P Dtype.Bool) ~size:n [ (src, 1.0) ]
  in
  let levels = Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  match
    Vm_runtime.call_program vm_program "bfs"
      [ Ogb.Vm_bridge.wrap_container graph;
        Ogb.Vm_bridge.wrap_container frontier;
        Ogb.Vm_bridge.wrap_container levels ]
  with
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
  | _ -> levels

(* Tier 2: one interpreted call into the whole compiled algorithm. *)
let vm_whole graph ~src =
  let kernel =
    Vm_runtime.whole_algorithm ~name:"bfs" ~dtype:"bool" (fun () ->
        Obj.repr (fun (g, s) -> native g ~src:s))
  in
  let f : bool Smatrix.t * int -> int Svector.t = Obj.obj kernel in
  let env = Vm_runtime.fresh_env () in
  Minivm.Env.define env "bfs_compiled"
    (Minivm.Value.Builtin
       ( "bfs_compiled",
         fun args ->
           match args with
           | [ g; Minivm.Value.Int s ] ->
             let c = Ogb.Vm_bridge.unwrap_container g in
             let c =
               if Ogb.Container.dtype_name c = "bool" then c
               else Ogb.Container.cast (Dtype.P Dtype.Bool) c
             in
             let m = Ogb.Container.as_matrix Dtype.Bool c in
             Ogb.Vm_bridge.wrap_container
               (Ogb.Container.of_svector (f (m, s)))
           | _ -> raise (Minivm.Value.Type_error "bfs_compiled: bad arguments")
       ));
  let open Minivm.Ast in
  let program =
    [ Assign ("result", Call (Var "bfs_compiled", [ Var "g"; Var "s" ])) ]
  in
  Minivm.Env.define env "g" (Ogb.Vm_bridge.wrap_container graph);
  Minivm.Env.define env "s" (Minivm.Value.Int src);
  Minivm.Interp.exec_block env program;
  Ogb.Vm_bridge.unwrap_container (Minivm.Env.lookup env "result")

let levels_of_svector levels =
  List.rev (Svector.fold (fun acc i d -> (i, d) :: acc) [] levels)

let levels_of_container c =
  List.map
    (fun (i, x) -> (i, int_of_float x))
    (Ogb.Container.vector_entries c)
