open Gbtl

let f64 = Dtype.FP64

let native ?(seed = 1) graph =
  let n = Smatrix.nrows graph in
  let rng = Graphs.Rng.create ~seed in
  let degrees = Utilities.row_degrees graph in
  let iset = Svector.create Dtype.Bool n in
  let candidates = Svector.create Dtype.Bool n in
  for v = 0 to n - 1 do
    (* isolated vertices are independent by definition *)
    if degrees.(v) = 0 then Svector.set iset v true
    else Svector.set candidates v true
  done;
  let max_select2nd = Semiring.max_select2nd f64 in
  let fgraph = Smatrix.cast ~into:f64 graph in
  let logical = Semiring.logical Dtype.Bool in
  while Svector.nvals candidates > 0 do
    (* prob[c] = eps + rand / (2 deg(c)) for every candidate *)
    let prob = Svector.create f64 n in
    Svector.iter
      (fun v _ ->
        Svector.set prob v
          (0.0001 +. (Graphs.Rng.float rng /. float_of_int (2 * degrees.(v)))))
      candidates;
    (* neighbor_max<candidates> = graph max.2nd prob *)
    let neighbor_max = Svector.create f64 n in
    Matmul.mxv
      ~mask:(Mask.vmask candidates)
      ~replace:true max_select2nd ~out:neighbor_max fgraph prob;
    (* new_members = prob > neighbor_max; where a candidate has no
       candidate neighbour the probability passes through unchanged and
       is truthy, which is exactly "greater than -inf" *)
    let new_members = Svector.create f64 n in
    Ewise.vector_add (Binop.greater_than f64) ~out:new_members prob
      neighbor_max;
    (* members, as a clean boolean vector of the truthy winners *)
    let members = Svector.create Dtype.Bool n in
    Assign.vector_scalar ~mask:(Mask.vmask new_members) ~out:members true
      Index_set.All;
    (* iset<members> = true *)
    Assign.vector_scalar ~mask:(Mask.vmask members) ~out:iset true
      Index_set.All;
    (* knock members and their neighbourhoods out of the candidates *)
    let neighbors = Svector.create Dtype.Bool n in
    Matmul.mxv logical ~out:neighbors graph members;
    let selected = Svector.create Dtype.Bool n in
    Ewise.vector_add (Binop.logical_or Dtype.Bool) ~out:selected members
      neighbors;
    Output.write_vector
      ~mask:(Mask.vmask ~complemented:true selected)
      ~accum:None ~replace:true ~out:candidates
      ~t:(Svector.entries candidates)
  done;
  iset

let is_independent graph iset =
  let ok = ref true in
  Svector.iter
    (fun v m ->
      if m then
        Smatrix.iter_row
          (fun w _ ->
            match Svector.get iset w with
            | Some true -> ok := false
            | Some false | None -> ())
          graph v)
    iset;
  !ok

let is_maximal graph iset =
  let n = Smatrix.nrows graph in
  let covered v =
    (match Svector.get iset v with Some true -> true | _ -> false)
    || Smatrix.fold_row
         (fun acc w _ ->
           acc || match Svector.get iset w with Some true -> true | _ -> false)
         false graph v
  in
  let ok = ref true in
  for v = 0 to n - 1 do
    if not (covered v) then ok := false
  done;
  !ok
