open Gbtl

let native ~k graph =
  if k < 3 then invalid_arg "Ktruss.native: k must be >= 3";
  let n = Smatrix.nrows graph in
  let threshold = float_of_int (k - 2) in
  let e = ref (Smatrix.cast ~into:Dtype.Int64 graph) in
  (* normalize stored values to ones *)
  e := Smatrix.map !e ~f:(fun _ -> 1);
  let arithmetic = Semiring.arithmetic Dtype.Int64 in
  let continue_ = ref true in
  while !continue_ do
    (* support<E> = E ⊕.⊗ Eᵀ : common-neighbour count per edge *)
    let support = Smatrix.create Dtype.Int64 n n in
    Matmul.mxm ~mask:(Mask.mmask !e) ~transpose_b:true arithmetic
      ~out:support !e !e;
    (* keep the edges with enough support *)
    let keep = Smatrix.create Dtype.Int64 n n in
    Select.matrix (Select.Value_ge threshold) ~out:keep support;
    if Smatrix.nvals keep = Smatrix.nvals !e then continue_ := false
    else e := Smatrix.map keep ~f:(fun _ -> 1)
  done;
  Smatrix.cast ~into:Dtype.Bool !e

let edge_count adj = Smatrix.nvals adj / 2

let dsl ~k graph =
  if k < 3 then invalid_arg "Ktruss.dsl: k must be >= 3";
  let open Ogb in
  let open Ogb.Ops.Infix in
  let nrows, ncols = Container.shape graph in
  let threshold = float_of_int (k - 2) in
  let e = ref (Container.cast (Dtype.P Dtype.Int64) graph) in
  let continue_ = ref true in
  Context.with_ops
    [ Context.semiring "Arithmetic" ]
    (fun () ->
      while !continue_ do
        (* support[E] = E @ E.T *)
        let support = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols in
        Ops.set ~mask:(Ops.Mask !e) support (!!(!e) @. tr !!(!e));
        (* E' = ones over select(support >= k-2) *)
        let keep = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols in
        Ops.set keep (Ops.select (Gbtl.Select.Value_ge threshold) !!support);
        if Container.nvals keep = Container.nvals !e then continue_ := false
        else begin
          let next = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols in
          Context.with_ops
            [ Context.unary_bound ~op:"First" ~side:`First 1.0 ]
            (fun () -> Ops.set next (Ops.apply !!keep));
          e := next
        end
      done);
  !e
