open Gbtl

let f64 = Dtype.FP64

(* One source's dependency accumulation (the LAGraph formulation with a
   dense bcu of ones). *)
let accumulate_source adj_f centrality s =
  let n = Smatrix.nrows adj_f in
  (* forward: frontier carries shortest-path counts *)
  let nsp = Svector.create f64 n in
  Svector.set nsp s 1.0;
  let frontier = Smatrix.extract_row adj_f s in
  let sigmas = ref [] in
  let arithmetic = Semiring.arithmetic f64 in
  while Svector.nvals frontier > 0 do
    (* record this wave's pattern (counts are >= 1, so truthy) *)
    sigmas := Svector.cast ~into:Dtype.Bool frontier :: !sigmas;
    (* nsp += frontier *)
    Output.write_vector ~mask:Mask.No_vmask ~accum:(Some (Binop.plus f64))
      ~replace:false ~out:nsp ~t:(Svector.entries frontier);
    (* frontier<¬nsp, replace> = frontier ⊕.⊗ A *)
    Matmul.vxm
      ~mask:(Mask.vmask ~complemented:true nsp)
      ~replace:true arithmetic ~out:frontier frontier adj_f
  done;
  let waves = Array.of_list (List.rev !sigmas) in
  let depth = Array.length waves in
  if depth > 0 then begin
    (* backward: bcu starts as dense ones *)
    let bcu = Svector.of_dense f64 (Array.make n 1.0) in
    let nspinv = Svector.create f64 n in
    Apply_reduce.apply_vector (Unaryop.multiplicative_inverse f64)
      ~out:nspinv nsp;
    let w = Svector.create f64 n in
    for i = depth - 1 downto 1 do
      (* w<S_i, replace> = bcu ⊗ 1/nsp *)
      Ewise.vector_mult
        ~mask:(Mask.vmask waves.(i))
        ~replace:true (Binop.times f64) ~out:w bcu nspinv;
      (* w = A ⊕.⊗ w : dependencies flow back along edges *)
      Matmul.mxv arithmetic ~out:w adj_f w;
      (* bcu<S_{i-1}> += w ⊗ nsp *)
      let t = Svector.create f64 n in
      Ewise.vector_mult (Binop.times f64) ~out:t w nsp;
      Output.write_vector
        ~mask:(Mask.vmask waves.(i - 1))
        ~accum:(Some (Binop.plus f64)) ~replace:false ~out:bcu
        ~t:(Svector.entries t)
    done;
    (* centrality += bcu - 1, excluding the source *)
    Svector.iter
      (fun v x ->
        if v <> s && x <> 1.0 then
          Svector.set centrality v
            ((match Svector.get centrality v with Some c -> c | None -> 0.0)
            +. x -. 1.0))
      bcu
  end

let native ?sources graph =
  let n = Smatrix.nrows graph in
  let adj_f = Smatrix.cast ~into:f64 graph in
  let centrality = Svector.of_dense f64 (Array.make n 0.0) in
  let sources =
    match sources with Some l -> l | None -> List.init n Fun.id
  in
  List.iter (fun s -> accumulate_source adj_f centrality s) sources;
  centrality
