(** The masked, accumulated output-write step shared by every GraphBLAS
    operation (C API §2.4; paper §II):

    {v C<M, z> = C ⊙ T v}

    where [T] is the operation's raw result, [⊙] an optional accumulator,
    [M] the mask and [z] the replace flag.  Semantics:

    - [Z = T] without an accumulator, or the structural union of [C] and
      [T] (combining shared positions with the accumulator) with one;
    - at mask-allowed positions, [C] becomes exactly [Z] (including the
      {e removal} of [C] entries absent from [Z]);
    - at masked-out positions, [C] keeps its entries ("merge") unless
      [replace] is set, in which case they are cleared. *)

val merge_with :
  ('a -> 'a -> 'a) -> 'a Entries.t -> 'a Entries.t -> 'a Entries.t
(** [merge_with f c t] — structural union; shared indices combined as
    [f c_value t_value]. *)

val masked_entries :
  allowed:(int -> bool) ->
  accum:('a -> 'a -> 'a) option ->
  replace:bool ->
  c:'a Entries.t ->
  t:'a Entries.t ->
  'a Entries.t
(** Pure form of the write step on one index space (a vector, or one
    matrix row). *)

val write_vector :
  mask:Mask.vmask ->
  accum:'a Binop.t option ->
  replace:bool ->
  out:'a Svector.t ->
  t:'a Entries.t ->
  unit
(** Applies {!masked_entries} against [out]'s current contents and stores
    the result in place.  @raise Svector.Dimension_mismatch on mask size
    mismatch. *)

val write_matrix :
  mask:Mask.mmask ->
  accum:'a Binop.t option ->
  replace:bool ->
  out:'a Smatrix.t ->
  t:'a Entries.t array ->
  unit
(** Row-wise write step; [t] has one entry sequence per output row. *)
