(** Unary operators of GBTL's [algebra.hpp] (paper Fig. 6), plus the
    bound-binary forms ([BinaryOp_Bind1st]/[Bind2nd] in GBTL) that
    PageRank's [gb.UnaryOp ("Times", damping)] relies on. *)

type 'a t = private { name : string; f : 'a -> 'a }

exception Unknown_operator of string

val names : string list
(** ["Identity"; "AdditiveInverse"; "LogicalNot"; "MultiplicativeInverse"] *)

val is_known : string -> bool

val of_name : string -> 'a Dtype.t -> 'a t
(** @raise Unknown_operator if unknown. *)

val bind1st : 'a Dtype.t -> 'a Binop.t -> 'a -> 'a t
(** [bind1st dt op k] is [fun x -> op k x]; its name encodes both the
    binop and the constant so JIT signatures distinguish instantiations,
    as PyGB's [-DIDENTITY=...] preprocessor defines do. *)

val bind2nd : 'a Dtype.t -> 'a Binop.t -> 'a -> 'a t

val make : string -> ('a -> 'a) -> 'a t
(** User-defined operator; name is prefixed with ["user:"]. *)

val register_user : string -> (float -> float) -> unit
(** Like {!Binop.register_user}: ["user:<name>"] becomes resolvable by
    {!of_name} at every dtype through float conversion. *)

val user_registered : string -> bool

val apply : 'a t -> 'a -> 'a

val identity : 'a Dtype.t -> 'a t
val additive_inverse : 'a Dtype.t -> 'a t
val logical_not : 'a Dtype.t -> 'a t
val multiplicative_inverse : 'a Dtype.t -> 'a t
