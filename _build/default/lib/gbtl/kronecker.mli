(** Kronecker product (GraphBLAS 1.3's [GrB_kronecker], an extension
    beyond the paper's Table I): the block matrix

    {v C((ia*nb)+ib, (ja*mb)+jb) = A(ia,ja) ⊗ B(ib,jb) v}

    with ⊗ an arbitrary binary operator.  The generator of Kronecker
    (Graph500-style) graphs by repeated products of a seed matrix. *)

val kronecker :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  'a Binop.t ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  'a Smatrix.t ->
  unit
(** [out] must have shape [(nrows A * nrows B, ncols A * ncols B)]. *)

val power : 'a Binop.t -> 'a Smatrix.t -> int -> 'a Smatrix.t
(** [power op seed k] — the k-fold Kronecker power of [seed] (k >= 1). *)
