let merge_with f c t =
  let out = Entries.create () in
  let nc = Entries.length c and nt = Entries.length t in
  let i = ref 0 and j = ref 0 in
  while !i < nc || !j < nt do
    if !i >= nc then begin
      Entries.push out (Entries.get_idx t !j) (Entries.get_val t !j);
      incr j
    end
    else if !j >= nt then begin
      Entries.push out (Entries.get_idx c !i) (Entries.get_val c !i);
      incr i
    end
    else begin
      let ic = Entries.get_idx c !i and it = Entries.get_idx t !j in
      if ic < it then begin
        Entries.push out ic (Entries.get_val c !i);
        incr i
      end
      else if it < ic then begin
        Entries.push out it (Entries.get_val t !j);
        incr j
      end
      else begin
        Entries.push out ic (f (Entries.get_val c !i) (Entries.get_val t !j));
        incr i;
        incr j
      end
    end
  done;
  out

let masked_entries ~allowed ~accum ~replace ~c ~t =
  let z = match accum with None -> t | Some f -> merge_with f c t in
  let out = Entries.create () in
  let nz = Entries.length z and nc = Entries.length c in
  let i = ref 0 (* walks z *) and j = ref 0 (* walks c *) in
  let keep_z idx v = if allowed idx then Entries.push out idx v in
  let keep_c idx v = if (not (allowed idx)) && not replace then Entries.push out idx v in
  while !i < nz || !j < nc do
    if !i >= nz then begin
      keep_c (Entries.get_idx c !j) (Entries.get_val c !j);
      incr j
    end
    else if !j >= nc then begin
      keep_z (Entries.get_idx z !i) (Entries.get_val z !i);
      incr i
    end
    else begin
      let iz = Entries.get_idx z !i and ic = Entries.get_idx c !j in
      if iz < ic then begin
        keep_z iz (Entries.get_val z !i);
        incr i
      end
      else if ic < iz then begin
        keep_c ic (Entries.get_val c !j);
        incr j
      end
      else begin
        (* Present in both: allowed -> Z wins, masked out -> C survives
           unless replace. *)
        if allowed iz then Entries.push out iz (Entries.get_val z !i)
        else if not replace then Entries.push out ic (Entries.get_val c !j);
        incr i;
        incr j
      end
    end
  done;
  out

let write_vector ~mask ~accum ~replace ~out ~t =
  Mask.v_check_size mask (Svector.size out);
  match mask, accum with
  | Mask.No_vmask, None ->
    (* C = T exactly; replace is irrelevant without a mask *)
    Svector.replace_contents out t
  | _, _ ->
    let accum = Option.map (fun (op : _ Binop.t) -> op.Binop.f) accum in
    let c = Svector.entries out in
    let result =
      masked_entries ~allowed:(Mask.v_allowed mask) ~accum ~replace ~c ~t
    in
    Svector.replace_contents out result

let write_matrix ~mask ~accum ~replace ~out ~t =
  let nrows = Smatrix.nrows out and ncols = Smatrix.ncols out in
  Mask.m_check_shape mask nrows ncols;
  assert (Array.length t = nrows);
  match mask, accum with
  | Mask.No_mmask, None ->
    Smatrix.replace_contents out
      (Smatrix.of_rows_unsafe (Smatrix.dtype out) ~nrows ~ncols t)
  | _, _ ->
    let accum = Option.map (fun (op : _ Binop.t) -> op.Binop.f) accum in
    let rows =
      Array.init nrows (fun r ->
          masked_entries ~allowed:(Mask.m_row_allowed mask r) ~accum ~replace
            ~c:(Smatrix.row_entries out r) ~t:t.(r))
    in
    let result =
      Smatrix.of_rows_unsafe (Smatrix.dtype out) ~nrows ~ncols rows
    in
    Smatrix.replace_contents out result
