(** Growable (index, value) sequence in ascending index order — the
    intermediate representation flowing between operation kernels and the
    masked output-write step. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> int -> 'a -> unit
(** Appends; indices must be pushed in strictly ascending order
    (checked by assertion). *)

val get_idx : 'a t -> int -> int
val get_val : 'a t -> int -> 'a
val iter : (int -> 'a -> unit) -> 'a t -> unit
val to_alist : 'a t -> (int * 'a) list
val of_alist : (int * 'a) list -> 'a t
(** Sorts by index; duplicate indices are an error (assertion). *)

val of_arrays_unsafe : int array -> 'a array -> len:int -> 'a t
(** Adopts the arrays without copying; indices must already be strictly
    ascending over the first [len] cells. *)
