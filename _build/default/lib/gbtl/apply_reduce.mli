(** [apply] (unary map over stored entries) and [reduce] (monoid fold to a
    vector or a scalar) — Table I rows apply / reduce. *)

val apply_vector :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  'a Unaryop.t ->
  out:'a Svector.t ->
  'a Svector.t ->
  unit
(** [w<m,z> = w ⊙ f(u)]. *)

val apply_matrix :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose:bool ->
  'a Unaryop.t ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  unit

val reduce_rows :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose:bool ->
  'a Monoid.t ->
  out:'a Svector.t ->
  'a Smatrix.t ->
  unit
(** [w<m,z> = w ⊙ [⊕_j A(:,j)]] — row-wise reduction (column-wise with
    [transpose]).  Rows with no stored entries produce no output entry. *)

val reduce_vector_scalar : ?accum:'a Binop.t -> ?init:'a -> 'a Monoid.t -> 'a Svector.t -> 'a
(** [s = s ⊙ [⊕_i u(i)]]; [init] is the prior value of [s] (meaningful
    with [accum]); without entries the monoid identity is returned. *)

val reduce_matrix_scalar : ?accum:'a Binop.t -> ?init:'a -> 'a Monoid.t -> 'a Smatrix.t -> 'a
