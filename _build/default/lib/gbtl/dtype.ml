type _ t =
  | Bool : bool t
  | Int8 : int t
  | Int16 : int t
  | Int32 : int t
  | Int64 : int t
  | UInt8 : int t
  | UInt16 : int t
  | UInt32 : int t
  | UInt64 : int64 t
  | FP32 : float t
  | FP64 : float t

type packed = P : 'a t -> packed

type (_, _) eq = Equal : ('a, 'a) eq

(* Representation classifier: matching on it refines the element type,
   which or-patterns over GADT constructors cannot do. *)
type _ repr =
  | RBool : bool repr
  | RInt : int t -> int repr
  | RInt64 : int64 repr
  | RFloat : float t -> float repr

let repr : type a. a t -> a repr = function
  | Bool -> RBool
  | Int8 -> RInt Int8
  | Int16 -> RInt Int16
  | Int32 -> RInt Int32
  | Int64 -> RInt Int64
  | UInt8 -> RInt UInt8
  | UInt16 -> RInt UInt16
  | UInt32 -> RInt UInt32
  | UInt64 -> RInt64
  | FP32 -> RFloat FP32
  | FP64 -> RFloat FP64

let name : type a. a t -> string = function
  | Bool -> "bool"
  | Int8 -> "int8_t"
  | Int16 -> "int16_t"
  | Int32 -> "int32_t"
  | Int64 -> "int64_t"
  | UInt8 -> "uint8_t"
  | UInt16 -> "uint16_t"
  | UInt32 -> "uint32_t"
  | UInt64 -> "uint64_t"
  | FP32 -> "float"
  | FP64 -> "double"

let short_name : type a. a t -> string = function
  | Bool -> "b"
  | Int8 -> "i8"
  | Int16 -> "i16"
  | Int32 -> "i32"
  | Int64 -> "i64"
  | UInt8 -> "u8"
  | UInt16 -> "u16"
  | UInt32 -> "u32"
  | UInt64 -> "u64"
  | FP32 -> "f32"
  | FP64 -> "f64"

let all =
  [ P Bool; P Int8; P UInt8; P Int16; P UInt16; P Int32; P UInt32;
    P Int64; P UInt64; P FP32; P FP64 ]

let of_name s =
  match s with
  | "bool" | "b" -> P Bool
  | "int8_t" | "i8" -> P Int8
  | "int16_t" | "i16" -> P Int16
  | "int32_t" | "i32" -> P Int32
  | "int64_t" | "i64" -> P Int64
  | "uint8_t" | "u8" -> P UInt8
  | "uint16_t" | "u16" -> P UInt16
  | "uint32_t" | "u32" -> P UInt32
  | "uint64_t" | "u64" -> P UInt64
  | "float" | "f32" -> P FP32
  | "double" | "f64" -> P FP64
  | _ -> invalid_arg ("Dtype.of_name: unknown dtype " ^ s)

let rank : type a. a t -> int = function
  | Bool -> 0
  | Int8 -> 1
  | UInt8 -> 2
  | Int16 -> 3
  | UInt16 -> 4
  | Int32 -> 5
  | UInt32 -> 6
  | Int64 -> 7
  | UInt64 -> 8
  | FP32 -> 9
  | FP64 -> 10

let size_bits : type a. a t -> int = function
  | Bool -> 1
  | Int8 | UInt8 -> 8
  | Int16 | UInt16 -> 16
  | Int32 | UInt32 | FP32 -> 32
  | Int64 | UInt64 | FP64 -> 64

let is_integral : type a. a t -> bool = function
  | FP32 | FP64 -> false
  | Bool | Int8 | Int16 | Int32 | Int64 | UInt8 | UInt16 | UInt32 | UInt64 ->
    true

let is_signed : type a. a t -> bool = function
  | Int8 | Int16 | Int32 | Int64 | FP32 | FP64 -> true
  | Bool | UInt8 | UInt16 | UInt32 | UInt64 -> false

let is_float : type a. a t -> bool = function
  | FP32 | FP64 -> true
  | Bool | Int8 | Int16 | Int32 | Int64 | UInt8 | UInt16 | UInt32 | UInt64 ->
    false

let equal_witness : type a b. a t -> b t -> (a, b) eq option =
 fun a b ->
  match a, b with
  | Bool, Bool -> Some Equal
  | Int8, Int8 -> Some Equal
  | Int16, Int16 -> Some Equal
  | Int32, Int32 -> Some Equal
  | Int64, Int64 -> Some Equal
  | UInt8, UInt8 -> Some Equal
  | UInt16, UInt16 -> Some Equal
  | UInt32, UInt32 -> Some Equal
  | UInt64, UInt64 -> Some Equal
  | FP32, FP32 -> Some Equal
  | FP64, FP64 -> Some Equal
  | ( ( Bool | Int8 | Int16 | Int32 | Int64 | UInt8 | UInt16 | UInt32
      | UInt64 | FP32 | FP64 ),
      _ ) ->
    None

let equal_packed (P a) (P b) =
  match equal_witness a b with Some Equal -> true | None -> false

let promote (P a as pa) (P b as pb) = if rank a >= rank b then pa else pb

(* Sign-extending wrap of a native int to [bits] width. *)
let wrap_signed bits v =
  let mask = (1 lsl bits) - 1 in
  let sign = 1 lsl (bits - 1) in
  ((v land mask) lxor sign) - sign

let wrap_unsigned bits v = v land ((1 lsl bits) - 1)

let wrap_int (it : int t) v =
  match it with
  | Int8 -> wrap_signed 8 v
  | Int16 -> wrap_signed 16 v
  | Int32 -> wrap_signed 32 v
  | Int64 -> v
  | UInt8 -> wrap_unsigned 8 v
  | UInt16 -> wrap_unsigned 16 v
  | UInt32 -> wrap_unsigned 32 v

let round_fp32 (v : float) = Int32.float_of_bits (Int32.bits_of_float v)

let normalize : type a. a t -> a -> a =
 fun dt v ->
  match repr dt with
  | RBool -> v
  | RInt it -> wrap_int it v
  | RInt64 -> v
  | RFloat FP32 -> round_fp32 v
  | RFloat _ -> v

let zero : type a. a t -> a =
 fun dt ->
  match repr dt with
  | RBool -> false
  | RInt _ -> 0
  | RInt64 -> 0L
  | RFloat _ -> 0.0

let one : type a. a t -> a =
 fun dt ->
  match repr dt with
  | RBool -> true
  | RInt _ -> 1
  | RInt64 -> 1L
  | RFloat _ -> 1.0

let min_value : type a. a t -> a =
 fun dt ->
  match repr dt with
  | RBool -> false
  | RInt Int8 -> -128
  | RInt Int16 -> -32768
  | RInt Int32 -> -2147483648
  | RInt Int64 -> min_int
  | RInt _ -> 0
  | RInt64 -> 0L
  | RFloat _ -> neg_infinity

let max_value : type a. a t -> a =
 fun dt ->
  match repr dt with
  | RBool -> true
  | RInt Int8 -> 127
  | RInt Int16 -> 32767
  | RInt Int32 -> 2147483647
  | RInt Int64 -> max_int
  | RInt UInt8 -> 255
  | RInt UInt16 -> 65535
  | RInt UInt32 -> 4294967295
  | RInt64 -> -1L (* all bits set: unsigned max *)
  | RFloat _ -> infinity

(* Unsigned interpretation of an int64 as float; exact only below 2^53 but
   GraphBLAS casts of huge uint64 values are inherently lossy in C too. *)
let uint64_to_float (v : int64) =
  if Int64.compare v 0L >= 0 then Int64.to_float v
  else
    (Int64.to_float (Int64.shift_right_logical v 1) *. 2.0)
    +. Int64.to_float (Int64.logand v 1L)

let float_to_uint64 (f : float) =
  if f <= 0.0 then 0L
  else if f >= 18446744073709551615.0 then -1L
  else if f < 9223372036854775808.0 then Int64.of_float f
  else Int64.add Int64.min_int (Int64.of_float (f -. 9223372036854775808.0))

let to_float : type a. a t -> a -> float =
 fun dt v ->
  match repr dt with
  | RBool -> if v then 1.0 else 0.0
  | RInt _ -> float_of_int v
  | RInt64 -> uint64_to_float v
  | RFloat _ -> v

let of_float : type a. a t -> float -> a =
 fun dt f ->
  match repr dt with
  | RBool -> f <> 0.0
  | RInt it -> wrap_int it (int_of_float f)
  | RInt64 -> float_to_uint64 f
  | RFloat FP32 -> round_fp32 f
  | RFloat _ -> f

let of_int : type a. a t -> int -> a =
 fun dt i ->
  match repr dt with
  | RBool -> i <> 0
  | RInt it -> wrap_int it i
  | RInt64 -> Int64.of_int i
  | RFloat FP32 -> round_fp32 (float_of_int i)
  | RFloat _ -> float_of_int i

(* Exact integer view used for integer-to-integer casts. *)
let to_int64 : type a. a t -> a -> int64 =
 fun dt v ->
  match repr dt with
  | RBool -> if v then 1L else 0L
  | RInt _ -> Int64.of_int v
  | RInt64 -> v
  | RFloat _ -> Int64.of_float v

let of_int64 : type a. a t -> int64 -> a =
 fun dt v ->
  match repr dt with
  | RBool -> v <> 0L
  | RInt it -> wrap_int it (Int64.to_int v)
  | RInt64 -> v
  | RFloat FP32 -> round_fp32 (Int64.to_float v)
  | RFloat _ -> Int64.to_float v

let cast : type a b. from:a t -> into:b t -> a -> b =
 fun ~from ~into v ->
  match equal_witness from into with
  | Some Equal -> v
  | None ->
    if is_float into || is_float from then of_float into (to_float from v)
    else of_int64 into (to_int64 from v)

let to_bool : type a. a t -> a -> bool =
 fun dt v ->
  match repr dt with
  | RBool -> v
  | RInt _ -> v <> 0
  | RInt64 -> v <> 0L
  | RFloat _ -> v <> 0.0

let of_bool : type a. a t -> bool -> a =
 fun dt b ->
  match repr dt with
  | RBool -> b
  | RInt _ -> if b then 1 else 0
  | RInt64 -> if b then 1L else 0L
  | RFloat _ -> if b then 1.0 else 0.0

let to_string : type a. a t -> a -> string =
 fun dt v ->
  match repr dt with
  | RBool -> if v then "true" else "false"
  | RInt _ -> string_of_int v
  | RInt64 -> Printf.sprintf "%Lu" v
  | RFloat _ -> Printf.sprintf "%.9g" v

let pp_value dt fmt v = Format.pp_print_string fmt (to_string dt v)

let compare_values : type a. a t -> a -> a -> int =
 fun dt x y ->
  match repr dt with
  | RBool -> Bool.compare x y
  | RInt _ -> Int.compare x y
  | RInt64 -> Int64.unsigned_compare x y
  | RFloat _ -> Float.compare x y

let equal_values dt x y = compare_values dt x y = 0
