let apply_vector ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    (f : 'a Unaryop.t) ~out u =
  if Svector.size out <> Svector.size u then
    raise
      (Svector.Dimension_mismatch
         (Printf.sprintf "apply: output size %d vs input size %d"
            (Svector.size out) (Svector.size u)));
  let t = Entries.create () in
  Svector.iter (fun i x -> Entries.push t i (f.Unaryop.f x)) u;
  Output.write_vector ~mask ~accum ~replace ~out ~t

let apply_matrix ?(mask = Mask.No_mmask) ?accum ?(replace = false)
    ?(transpose = false) (f : 'a Unaryop.t) ~out a =
  let a = if transpose then Smatrix.transpose a else a in
  if Smatrix.shape out <> Smatrix.shape a then
    raise
      (Smatrix.Dimension_mismatch
         (Printf.sprintf "apply: output %dx%d vs input %dx%d"
            (Smatrix.nrows out) (Smatrix.ncols out) (Smatrix.nrows a)
            (Smatrix.ncols a)));
  let t =
    Array.init (Smatrix.nrows a) (fun r ->
        let e = Entries.create () in
        Smatrix.iter_row (fun c x -> Entries.push e c (f.Unaryop.f x)) a r;
        e)
  in
  Output.write_matrix ~mask ~accum ~replace ~out ~t

let reduce_rows ?(mask = Mask.No_vmask) ?accum ?(replace = false)
    ?(transpose = false) (m : 'a Monoid.t) ~out a =
  let a = if transpose then Smatrix.transpose a else a in
  if Svector.size out <> Smatrix.nrows a then
    raise
      (Svector.Dimension_mismatch
         (Printf.sprintf "reduce: output size %d vs matrix rows %d"
            (Svector.size out) (Smatrix.nrows a)));
  let t = Entries.create () in
  for r = 0 to Smatrix.nrows a - 1 do
    if Smatrix.row_nvals a r > 0 then begin
      let acc = ref m.Monoid.identity in
      Smatrix.iter_row (fun _ x -> acc := m.Monoid.op.Binop.f !acc x) a r;
      Entries.push t r !acc
    end
  done;
  Output.write_vector ~mask ~accum ~replace ~out ~t

let finish_scalar ?accum ?init (m : 'a Monoid.t) ~nvals total =
  let reduced = if nvals = 0 then m.Monoid.identity else total in
  match accum, init with
  | Some (op : 'a Binop.t), Some s -> op.Binop.f s reduced
  | Some _, None | None, (Some _ | None) -> reduced

let reduce_vector_scalar ?accum ?init (m : 'a Monoid.t) u =
  let total =
    Svector.fold (fun acc _ x -> m.Monoid.op.Binop.f acc x) m.Monoid.identity u
  in
  finish_scalar ?accum ?init m ~nvals:(Svector.nvals u) total

let reduce_matrix_scalar ?accum ?init (m : 'a Monoid.t) a =
  let total =
    Smatrix.fold (fun acc _ _ x -> m.Monoid.op.Binop.f acc x) m.Monoid.identity a
  in
  finish_scalar ?accum ?init m ~nvals:(Smatrix.nvals a) total
