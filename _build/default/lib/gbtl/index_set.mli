(** Index arguments of [extract]/[assign]: the C API's [GrB_ALL], explicit
    index arrays, and Python-slice-style ranges (what PyGB's [2:4]
    subscripts lower to). *)

type t =
  | All
  | List of int array
  | Range of { start : int; stop : int }  (** half-open [start, stop) *)

exception Invalid_index of string

val length : t -> int -> int
(** [length t dim] — number of selected indices against dimension [dim]. *)

val resolve : t -> int -> int array
(** Materialize the selected indices.  @raise Invalid_index if any index
    falls outside [0, dim) or a range is malformed. *)

val check_no_duplicates : int array -> unit
(** @raise Invalid_index on duplicates — assign targets must be unique. *)

val pp : Format.formatter -> t -> unit
