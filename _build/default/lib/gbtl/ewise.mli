(** Element-wise operations (Table I rows [eWiseAdd] / [eWiseMult]).

    [eWiseAdd] operates on the {e union} of the two structures (the
    operator applies only where both are present; singletons pass
    through), [eWiseMult] on the {e intersection}. *)

val vector_add :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  'a Binop.t ->
  out:'a Svector.t ->
  'a Svector.t ->
  'a Svector.t ->
  unit
(** [w<m,z> = w ⊙ (u ⊕ v)].  @raise Svector.Dimension_mismatch *)

val vector_mult :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  'a Binop.t ->
  out:'a Svector.t ->
  'a Svector.t ->
  'a Svector.t ->
  unit

val matrix_add :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose_a:bool ->
  ?transpose_b:bool ->
  'a Binop.t ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  'a Smatrix.t ->
  unit

val matrix_mult :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose_a:bool ->
  ?transpose_b:bool ->
  'a Binop.t ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  'a Smatrix.t ->
  unit

(** Pure structural combinators, exposed for reuse and testing. *)

val union_entries :
  ('a -> 'a -> 'a) -> 'a Entries.t -> 'a Entries.t -> 'a Entries.t

val intersect_entries :
  ('a -> 'a -> 'a) -> 'a Entries.t -> 'a Entries.t -> 'a Entries.t
