(** The matrix-multiply family over an arbitrary semiring: [mxv], [vxm],
    [mxm] (Table I).  Absent entries are the semiring's additive identity
    implicitly; products are accumulated with the additive monoid.

    Kernels: Gustavson row-wise SPA for unmasked [mxm]; a dot-product
    kernel for masked [mxm] with [transpose_b] (computing only
    mask-allowed outputs — the access pattern masked triangle counting
    depends on); scatter/gather SPA kernels for [mxv]/[vxm].  Input
    transposition falls back to materializing the transpose where no
    cheaper dual formulation exists. *)

val mxv :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose_a:bool ->
  'a Semiring.t ->
  out:'a Svector.t ->
  'a Smatrix.t ->
  'a Svector.t ->
  unit
(** [w<m,z> = w ⊙ (A ⊕.⊗ u)].  @raise Smatrix.Dimension_mismatch *)

val vxm :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose_a:bool ->
  'a Semiring.t ->
  out:'a Svector.t ->
  'a Svector.t ->
  'a Smatrix.t ->
  unit
(** [w<m,z> = w ⊙ (u ⊕.⊗ A)]. *)

val mxm :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose_a:bool ->
  ?transpose_b:bool ->
  'a Semiring.t ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  'a Smatrix.t ->
  unit
(** [C<M,z> = C ⊙ (A ⊕.⊗ B)]. *)
