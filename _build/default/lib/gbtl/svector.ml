type 'a t = {
  dt : 'a Dtype.t;
  size : int;
  mutable nvals : int;
  mutable idx : int array;
  mutable vals : 'a array;
}

exception Dimension_mismatch of string
exception Index_out_of_bounds of string

let create dt size =
  if size < 0 then invalid_arg "Svector.create: negative size";
  { dt; size; nvals = 0; idx = [||]; vals = [||] }

let dtype v = v.dt
let size v = v.size
let nvals v = v.nvals

let check_index v i ctx =
  if i < 0 || i >= v.size then
    raise
      (Index_out_of_bounds
         (Printf.sprintf "%s: index %d outside [0, %d)" ctx i v.size))

(* Binary search for [i]; returns [Ok pos] if present, [Error ins] with the
   insertion point otherwise. *)
let find v i =
  let lo = ref 0 and hi = ref v.nvals in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v.idx.(mid) < i then lo := mid + 1 else hi := mid
  done;
  if !lo < v.nvals && v.idx.(!lo) = i then Ok !lo else Error !lo

let get v i =
  check_index v i "Svector.get";
  match find v i with Ok p -> Some v.vals.(p) | Error _ -> None

let get_exn v i =
  match get v i with Some x -> x | None -> raise Not_found

let mem v i =
  check_index v i "Svector.mem";
  match find v i with Ok _ -> true | Error _ -> false

let ensure_capacity v n dummy =
  if Array.length v.idx < n then begin
    let cap = max 8 (max n (2 * Array.length v.idx)) in
    let idx' = Array.make cap 0 and vals' = Array.make cap dummy in
    Array.blit v.idx 0 idx' 0 v.nvals;
    Array.blit v.vals 0 vals' 0 v.nvals;
    v.idx <- idx';
    v.vals <- vals'
  end

let set v i x =
  check_index v i "Svector.set";
  match find v i with
  | Ok p -> v.vals.(p) <- x
  | Error p ->
    ensure_capacity v (v.nvals + 1) x;
    Array.blit v.idx p v.idx (p + 1) (v.nvals - p);
    Array.blit v.vals p v.vals (p + 1) (v.nvals - p);
    v.idx.(p) <- i;
    v.vals.(p) <- x;
    v.nvals <- v.nvals + 1

let remove v i =
  check_index v i "Svector.remove";
  match find v i with
  | Error _ -> ()
  | Ok p ->
    Array.blit v.idx (p + 1) v.idx p (v.nvals - p - 1);
    Array.blit v.vals (p + 1) v.vals p (v.nvals - p - 1);
    v.nvals <- v.nvals - 1

let clear v = v.nvals <- 0

let dup v =
  {
    dt = v.dt;
    size = v.size;
    nvals = v.nvals;
    idx = Array.sub v.idx 0 v.nvals;
    vals = Array.sub v.vals 0 v.nvals;
  }

let of_coo ?dup dt size alist =
  let v = create dt size in
  let combine =
    match dup with
    | Some op -> op.Binop.f
    | None -> fun _ y -> y
  in
  let sorted = List.stable_sort (fun (i, _) (j, _) -> Int.compare i j) alist in
  List.iter
    (fun (i, x) ->
      check_index v i "Svector.of_coo";
      match find v i with
      | Ok p -> v.vals.(p) <- combine v.vals.(p) x
      | Error _ -> set v i x)
    sorted;
  v

let of_dense dt arr =
  let n = Array.length arr in
  let v = create dt n in
  ensure_capacity v n (if n > 0 then arr.(0) else Dtype.zero dt);
  Array.iteri
    (fun i x ->
      v.idx.(i) <- i;
      v.vals.(i) <- x)
    arr;
  v.nvals <- n;
  v

let of_dense_drop_zeros dt arr =
  let v = create dt (Array.length arr) in
  Array.iteri (fun i x -> if not (Dtype.equal_values dt x (Dtype.zero dt)) then set v i x) arr;
  v

let replace_contents v e =
  let n = Entries.length e in
  if n > 0 then begin
    let last = Entries.get_idx e (n - 1) in
    if last >= v.size then
      raise
        (Index_out_of_bounds
           (Printf.sprintf "Svector.replace_contents: index %d outside [0, %d)"
              last v.size));
    ensure_capacity v n (Entries.get_val e 0)
  end;
  for k = 0 to n - 1 do
    v.idx.(k) <- Entries.get_idx e k;
    v.vals.(k) <- Entries.get_val e k
  done;
  v.nvals <- n

let entries v =
  let e = Entries.create () in
  for k = 0 to v.nvals - 1 do
    Entries.push e v.idx.(k) v.vals.(k)
  done;
  e

let iter f v =
  for k = 0 to v.nvals - 1 do
    f v.idx.(k) v.vals.(k)
  done

let fold f init v =
  let acc = ref init in
  iter (fun i x -> acc := f !acc i x) v;
  !acc

let to_alist v = List.rev (fold (fun acc i x -> (i, x) :: acc) [] v)

let to_dense ~fill v =
  let arr = Array.make v.size fill in
  iter (fun i x -> arr.(i) <- x) v;
  arr

let cast ~into v =
  let out = create into v.size in
  ensure_capacity out v.nvals (Dtype.zero into);
  for k = 0 to v.nvals - 1 do
    out.idx.(k) <- v.idx.(k);
    out.vals.(k) <- Dtype.cast ~from:v.dt ~into v.vals.(k)
  done;
  out.nvals <- v.nvals;
  out

let map v ~f =
  let out = dup v in
  for k = 0 to out.nvals - 1 do
    out.vals.(k) <- f out.vals.(k)
  done;
  out

let map_inplace v ~f =
  for k = 0 to v.nvals - 1 do
    v.vals.(k) <- f v.vals.(k)
  done

let to_bool_dense v =
  let arr = Array.make v.size false in
  iter (fun i x -> arr.(i) <- Dtype.to_bool v.dt x) v;
  arr

let equal a b =
  a.size = b.size && a.nvals = b.nvals
  &&
  let ok = ref true in
  for k = 0 to a.nvals - 1 do
    if a.idx.(k) <> b.idx.(k) || not (Dtype.equal_values a.dt a.vals.(k) b.vals.(k))
    then ok := false
  done;
  !ok

let unsafe_indices v = v.idx
let unsafe_values v = v.vals

let pp fmt v =
  Format.fprintf fmt "@[<hov 2>Vector<%s>(size=%d, nvals=%d" (Dtype.name v.dt)
    v.size v.nvals;
  iter (fun i x -> Format.fprintf fmt ",@ %d:%s" i (Dtype.to_string v.dt x)) v;
  Format.fprintf fmt ")@]"
