type 'a t = { name : string; add : 'a Monoid.t; mul : 'a Binop.t }

exception Unknown_semiring of string

let names =
  [ "Arithmetic"; "Logical"; "MinPlus"; "MaxPlus"; "MinTimes"; "MaxTimes";
    "MinSelect1st"; "MinSelect2nd"; "MaxSelect1st"; "MaxSelect2nd" ]

let of_name name dt =
  let m mon op = { name; add = mon dt; mul = Binop.of_name op dt } in
  match name with
  | "Arithmetic" -> m Monoid.plus "Times"
  | "Logical" -> m Monoid.logical_or "LogicalAnd"
  | "MinPlus" -> m Monoid.min "Plus"
  | "MaxPlus" -> m Monoid.max "Plus"
  | "MinTimes" -> m Monoid.min "Times"
  | "MaxTimes" -> m Monoid.max "Times"
  | "MinSelect1st" -> m Monoid.min "First"
  | "MinSelect2nd" -> m Monoid.min "Second"
  | "MaxSelect1st" -> m Monoid.max "First"
  | "MaxSelect2nd" -> m Monoid.max "Second"
  | other -> raise (Unknown_semiring other)

let make (add : 'a Monoid.t) (mul : 'a Binop.t) =
  let name =
    Printf.sprintf "Semiring(%s/%s,%s)" add.Monoid.op.Binop.name
      add.Monoid.identity_name mul.Binop.name
  in
  { name; add; mul }

let arithmetic dt = of_name "Arithmetic" dt
let logical dt = of_name "Logical" dt
let min_plus dt = of_name "MinPlus" dt
let max_plus dt = of_name "MaxPlus" dt
let min_times dt = of_name "MinTimes" dt
let max_times dt = of_name "MaxTimes" dt
let min_select1st dt = of_name "MinSelect1st" dt
let min_select2nd dt = of_name "MinSelect2nd" dt
let max_select1st dt = of_name "MaxSelect1st" dt
let max_select2nd dt = of_name "MaxSelect2nd" dt

let zero sr = sr.add.Monoid.identity
let add sr x y = sr.add.Monoid.op.Binop.f x y
let mul sr x y = sr.mul.Binop.f x y
let pp fmt sr = Format.pp_print_string fmt sr.name
