(** Sparse accumulator (SPA) for Gustavson-style matrix kernels: a dense
    value buffer plus an occupancy flag array and a touched list, so that
    clearing between rows costs O(touched) instead of O(n). *)

type 'a t

val create : int -> dummy:'a -> 'a t
(** [dummy] initializes the dense buffer; never observable. *)

val size : 'a t -> int
val occupied : 'a t -> int -> bool
val get : 'a t -> int -> 'a
(** Undefined unless [occupied]. *)

val set : 'a t -> int -> 'a -> unit
(** Insert or overwrite. *)

val accumulate : 'a t -> int -> 'a -> add:('a -> 'a -> 'a) -> unit
(** [set] if vacant, combine with [add] otherwise. *)

val count : 'a t -> int
(** Number of occupied slots. *)

val extract : 'a t -> 'a Entries.t
(** Occupied (index, value) pairs in ascending index order. *)

val extract_filtered : 'a t -> keep:(int -> bool) -> 'a Entries.t
val clear : 'a t -> unit
(** O(number of touched slots). *)
