(** Per-dtype primitive arithmetic.

    A single record of monomorphic closures per dtype; the operator
    algebra ({!Binop}, {!Unaryop}, {!Monoid}, {!Semiring}) is built on top
    of it.  Every result is normalized back into the dtype's domain (width
    wrapping / single-precision rounding), mirroring C arithmetic on the
    corresponding POD type. *)

type 'a t = {
  dtype : 'a Dtype.t;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  div : 'a -> 'a -> 'a;
      (** Integer division by zero yields [zero] (documented deviation: C
          leaves it undefined). *)
  neg : 'a -> 'a;
  min : 'a -> 'a -> 'a;
  max : 'a -> 'a -> 'a;
  eq : 'a -> 'a -> bool;
  lt : 'a -> 'a -> bool;
  to_bool : 'a -> bool;
  of_bool : bool -> 'a;
  zero : 'a;
  one : 'a;
  min_value : 'a;
  max_value : 'a;
}

val make : 'a Dtype.t -> 'a t
