let transpose ?(mask = Mask.No_mmask) ?accum ?(replace = false) ~out a =
  let at = Smatrix.transpose a in
  if Smatrix.shape out <> Smatrix.shape at then
    raise
      (Smatrix.Dimension_mismatch
         (Printf.sprintf "transpose: output %dx%d vs input' %dx%d"
            (Smatrix.nrows out) (Smatrix.ncols out) (Smatrix.nrows at)
            (Smatrix.ncols at)));
  let t = Array.init (Smatrix.nrows at) (fun r -> Smatrix.row_entries at r) in
  Output.write_matrix ~mask ~accum ~replace ~out ~t
