(** The [transpose] {e operation} (Table I): [C<M,z> = C ⊙ Aᵀ], with full
    mask/accumulate semantics — distinct from the structural
    {!Smatrix.transpose} it is built on. *)

val transpose :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  unit
