type 'a t = { name : string; f : 'a -> 'a }

exception Unknown_operator of string

let names =
  [ "Identity"; "AdditiveInverse"; "LogicalNot"; "MultiplicativeInverse" ]

let is_known n = List.mem n names

let user_table : (string, float -> float) Hashtbl.t = Hashtbl.create 8

let register_user name f = Hashtbl.replace user_table name f

let user_registered name = Hashtbl.mem user_table name

let lookup_user name =
  let prefix = "user:" in
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    Hashtbl.find_opt user_table (String.sub name n (String.length name - n))
  else None

let of_name (type a) name (dt : a Dtype.t) : a t =
  let a = Arith.make dt in
  let f =
    match name with
    | "Identity" -> Fun.id
    | "AdditiveInverse" -> a.neg
    | "LogicalNot" -> fun x -> a.of_bool (not (a.to_bool x))
    | "MultiplicativeInverse" -> fun x -> a.div a.one x
    | other -> (
      match lookup_user other with
      | Some g -> fun x -> Dtype.of_float dt (g (Dtype.to_float dt x))
      | None -> raise (Unknown_operator other))
  in
  { name; f }

let bind1st dt (op : 'a Binop.t) k =
  let name = Printf.sprintf "%s$bind1st:%s" op.name (Dtype.to_string dt k) in
  { name; f = (fun x -> op.f k x) }

let bind2nd dt (op : 'a Binop.t) k =
  let name = Printf.sprintf "%s$bind2nd:%s" op.name (Dtype.to_string dt k) in
  { name; f = (fun x -> op.f x k) }

let make name f = { name = "user:" ^ name; f }

let apply op x = op.f x

let identity dt = of_name "Identity" dt
let additive_inverse dt = of_name "AdditiveInverse" dt
let logical_not dt = of_name "LogicalNot" dt
let multiplicative_inverse dt = of_name "MultiplicativeInverse" dt
