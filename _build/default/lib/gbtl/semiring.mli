(** Semirings: an additive monoid paired with a multiplicative binary
    operator, the parameterization at the heart of GraphBLAS.

    The named semirings are the GBTL set the paper uses:
    Arithmetic (plus/times), Logical (or/and), MinPlus, MaxPlus, MinTimes,
    MaxTimes, MinSelect1st/2nd, MaxSelect1st/2nd. *)

type 'a t = private { name : string; add : 'a Monoid.t; mul : 'a Binop.t }

exception Unknown_semiring of string

val names : string list

val of_name : string -> 'a Dtype.t -> 'a t
(** @raise Unknown_semiring *)

val make : 'a Monoid.t -> 'a Binop.t -> 'a t
(** Ad-hoc semiring, [gb.Semiring (monoid, binop)] in the paper; the name
    is synthesized from the parts. *)

val arithmetic : 'a Dtype.t -> 'a t
val logical : 'a Dtype.t -> 'a t
val min_plus : 'a Dtype.t -> 'a t
val max_plus : 'a Dtype.t -> 'a t
val min_times : 'a Dtype.t -> 'a t
val max_times : 'a Dtype.t -> 'a t
val min_select1st : 'a Dtype.t -> 'a t
val min_select2nd : 'a Dtype.t -> 'a t
val max_select1st : 'a Dtype.t -> 'a t
val max_select2nd : 'a Dtype.t -> 'a t

val zero : 'a t -> 'a
(** The additive identity (the implied "no entry" value of the sparse
    computation). *)

val add : 'a t -> 'a -> 'a -> 'a
val mul : 'a t -> 'a -> 'a -> 'a
val pp : Format.formatter -> 'a t -> unit
