type 'a t = {
  vals : 'a array;
  occ : bool array;
  mutable touched : int array;
  mutable ntouched : int;
}

let create n ~dummy =
  { vals = Array.make (max n 1) dummy; occ = Array.make (max n 1) false;
    touched = Array.make 16 0; ntouched = 0 }

let size s = Array.length s.occ

let occupied s i = s.occ.(i)

let get s i = s.vals.(i)

let touch s i =
  if s.ntouched = Array.length s.touched then begin
    let t = Array.make (2 * s.ntouched) 0 in
    Array.blit s.touched 0 t 0 s.ntouched;
    s.touched <- t
  end;
  s.touched.(s.ntouched) <- i;
  s.ntouched <- s.ntouched + 1

let set s i v =
  if not s.occ.(i) then begin
    s.occ.(i) <- true;
    touch s i
  end;
  s.vals.(i) <- v

let accumulate s i v ~add =
  if s.occ.(i) then s.vals.(i) <- add s.vals.(i) v
  else begin
    s.occ.(i) <- true;
    s.vals.(i) <- v;
    touch s i
  end

let count s =
  let c = ref 0 in
  for k = 0 to s.ntouched - 1 do
    if s.occ.(s.touched.(k)) then incr c
  done;
  !c

let sorted_touched s =
  let t = Array.sub s.touched 0 s.ntouched in
  Array.sort Int.compare t;
  t

let extract s =
  let e = Entries.create () in
  let t = sorted_touched s in
  Array.iter (fun i -> if s.occ.(i) then Entries.push e i s.vals.(i)) t;
  e

let extract_filtered s ~keep =
  let e = Entries.create () in
  let t = sorted_touched s in
  Array.iter
    (fun i -> if s.occ.(i) && keep i then Entries.push e i s.vals.(i))
    t;
  e

let clear s =
  for k = 0 to s.ntouched - 1 do
    s.occ.(s.touched.(k)) <- false
  done;
  s.ntouched <- 0
