type 'a t = {
  dtype : 'a Dtype.t;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  div : 'a -> 'a -> 'a;
  neg : 'a -> 'a;
  min : 'a -> 'a -> 'a;
  max : 'a -> 'a -> 'a;
  eq : 'a -> 'a -> bool;
  lt : 'a -> 'a -> bool;
  to_bool : 'a -> bool;
  of_bool : bool -> 'a;
  zero : 'a;
  one : 'a;
  min_value : 'a;
  max_value : 'a;
}

let bool_arith : bool t =
  {
    dtype = Bool;
    (* Bool arithmetic follows GraphBLAS convention: plus = lor,
       times = land, as in C++ bool promotion collapsed back to bool. *)
    add = ( || );
    sub = ( <> );
    mul = ( && );
    div = (fun a _ -> a);
    neg = Fun.id;
    min = ( && );
    max = ( || );
    eq = Bool.equal;
    lt = (fun a b -> (not a) && b);
    to_bool = Fun.id;
    of_bool = Fun.id;
    zero = false;
    one = true;
    min_value = false;
    max_value = true;
  }

(* Values of widths <= 32 are kept normalized (signed ones sign-extended,
   unsigned ones in [0, 2^w)), so native [int] comparison is correct for
   both signed and unsigned dtypes. *)
let int_arith (dt : int Dtype.t) : int t =
  let n = Dtype.normalize dt in
  {
    dtype = dt;
    add = (fun a b -> n (a + b));
    sub = (fun a b -> n (a - b));
    mul = (fun a b -> n (a * b));
    div = (fun a b -> if b = 0 then 0 else n (a / b));
    neg = (fun a -> n (-a));
    min = (fun a b -> if a <= b then a else b);
    max = (fun a b -> if a >= b then a else b);
    eq = Int.equal;
    lt = ( < );
    to_bool = (fun a -> a <> 0);
    of_bool = (fun b -> if b then 1 else 0);
    zero = 0;
    one = 1;
    min_value = Dtype.min_value dt;
    max_value = Dtype.max_value dt;
  }

let uint64_arith : int64 t =
  {
    dtype = UInt64;
    add = Int64.add;
    sub = Int64.sub;
    mul = Int64.mul;
    div = (fun a b -> if b = 0L then 0L else Int64.unsigned_div a b);
    neg = Int64.neg;
    min = (fun a b -> if Int64.unsigned_compare a b <= 0 then a else b);
    max = (fun a b -> if Int64.unsigned_compare a b >= 0 then a else b);
    eq = Int64.equal;
    lt = (fun a b -> Int64.unsigned_compare a b < 0);
    to_bool = (fun a -> a <> 0L);
    of_bool = (fun b -> if b then 1L else 0L);
    zero = 0L;
    one = 1L;
    min_value = 0L;
    max_value = -1L;
  }

let float_arith (dt : float Dtype.t) : float t =
  let n = Dtype.normalize dt in
  {
    dtype = dt;
    add = (fun a b -> n (a +. b));
    sub = (fun a b -> n (a -. b));
    mul = (fun a b -> n (a *. b));
    div = (fun a b -> n (a /. b));
    neg = (fun a -> -.a);
    min = (fun a b -> if a <= b then a else b);
    max = (fun a b -> if a >= b then a else b);
    eq = (fun a b -> a = b);
    lt = (fun a b -> a < b);
    to_bool = (fun a -> a <> 0.0);
    of_bool = (fun b -> if b then 1.0 else 0.0);
    zero = 0.0;
    one = 1.0;
    min_value = neg_infinity;
    max_value = infinity;
  }

let make : type a. a Dtype.t -> a t = function
  | Bool -> bool_arith
  | Int8 -> int_arith Int8
  | Int16 -> int_arith Int16
  | Int32 -> int_arith Int32
  | Int64 -> int_arith Int64
  | UInt8 -> int_arith UInt8
  | UInt16 -> int_arith UInt16
  | UInt32 -> int_arith UInt32
  | UInt64 -> uint64_arith
  | FP32 -> float_arith FP32
  | FP64 -> float_arith FP64
