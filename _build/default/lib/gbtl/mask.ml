type vmask = No_vmask | Vmask of { dense : bool array; complemented : bool }

type mmask =
  | No_mmask
  | Mmask of { m : bool Smatrix.t; complemented : bool }

let vmask ?(complemented = false) v =
  Vmask { dense = Svector.to_bool_dense v; complemented }

let coerce_bool_matrix (type a) (m : a Smatrix.t) : bool Smatrix.t =
  let dt = Smatrix.dtype m in
  match Dtype.equal_witness dt Dtype.Bool with
  | Some Dtype.Equal -> m
  | None -> Smatrix.cast ~into:Dtype.Bool m

let mmask ?(complemented = false) m =
  Mmask { m = coerce_bool_matrix m; complemented }

let v_allowed mask i =
  match mask with
  | No_vmask -> true
  | Vmask { dense; complemented } -> dense.(i) <> complemented

let v_check_size mask n =
  match mask with
  | No_vmask -> ()
  | Vmask { dense; _ } ->
    if Array.length dense <> n then
      raise
        (Svector.Dimension_mismatch
           (Printf.sprintf "mask size %d does not match vector size %d"
              (Array.length dense) n))

let m_check_shape mask nrows ncols =
  match mask with
  | No_mmask -> ()
  | Mmask { m; _ } ->
    if Smatrix.nrows m <> nrows || Smatrix.ncols m <> ncols then
      raise
        (Smatrix.Dimension_mismatch
           (Printf.sprintf "mask shape %dx%d does not match output %dx%d"
              (Smatrix.nrows m) (Smatrix.ncols m) nrows ncols))

let m_row_allowed mask r =
  match mask with
  | No_mmask -> fun _ -> true
  | Mmask { m; complemented } ->
    fun c ->
      let stored_true =
        match Smatrix.get m r c with Some b -> b | None -> false
      in
      stored_true <> complemented

let m_row_allowed_list mask r =
  match mask with
  | No_mmask -> None
  | Mmask { complemented = true; _ } -> None
  | Mmask { m; complemented = false } ->
    let cols = ref [] in
    Smatrix.iter_row (fun c b -> if b then cols := c :: !cols) m r;
    Some (Array.of_list (List.rev !cols))
