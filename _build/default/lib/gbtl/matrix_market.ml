exception Parse_error of string

type field = Real | Integer | Pattern
type symmetry = General | Symmetric | Skew_symmetric

type header = {
  field : field;
  symmetry : symmetry;
  nrows : int;
  ncols : int;
  nnz : int;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let read_header ic =
  let banner = try input_line ic with End_of_file -> fail "empty file" in
  (match split_ws (String.lowercase_ascii banner) with
  | [ "%%matrixmarket"; "matrix"; "coordinate"; _; _ ] -> ()
  | _ -> fail "unsupported banner: %s" banner);
  let field, symmetry =
    match split_ws (String.lowercase_ascii banner) with
    | [ _; _; _; f; s ] ->
      let field =
        match f with
        | "real" -> Real
        | "integer" -> Integer
        | "pattern" -> Pattern
        | _ -> fail "unsupported field type: %s" f
      in
      let symmetry =
        match s with
        | "general" -> General
        | "symmetric" -> Symmetric
        | "skew-symmetric" -> Skew_symmetric
        | _ -> fail "unsupported symmetry: %s" s
      in
      (field, symmetry)
    | _ -> fail "malformed banner"
  in
  let rec size_line () =
    let line = try input_line ic with End_of_file -> fail "missing size line" in
    let line = String.trim line in
    if line = "" || line.[0] = '%' then size_line () else line
  in
  match split_ws (size_line ()) with
  | [ r; c; n ] -> (
    try { field; symmetry; nrows = int_of_string r; ncols = int_of_string c;
          nnz = int_of_string n }
    with Failure _ -> fail "malformed size line")
  | _ -> fail "malformed size line"

let parse_value (type a) (dt : a Dtype.t) field tokens : a =
  match field, tokens with
  | Pattern, [] -> Dtype.one dt
  | (Real | Integer), [ tok ] -> (
    match float_of_string_opt tok with
    | Some f -> Dtype.of_float dt f
    | None -> fail "bad value token: %s" tok)
  | _ -> fail "wrong number of value tokens"

let read_coo dt path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let h = read_header ic in
      let entries = ref [] in
      let count = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '%' then begin
             (match split_ws line with
             | r :: c :: rest ->
               let r = int_of_string r - 1 and c = int_of_string c - 1 in
               let v = parse_value dt h.field rest in
               entries := (r, c, v) :: !entries;
               (match h.symmetry with
               | General -> ()
               | Symmetric ->
                 if r <> c then entries := (c, r, v) :: !entries
               | Skew_symmetric ->
                 if r <> c then
                   entries :=
                     (c, r, Unaryop.(apply (additive_inverse dt) v))
                     :: !entries);
               incr count
             | _ -> fail "malformed entry line: %s" line)
           end
         done
       with End_of_file -> ());
      if !count <> h.nnz then
        fail "entry count %d does not match declared %d" !count h.nnz;
      (h, List.rev !entries))

let read dt path =
  let h, coo = read_coo dt path in
  Smatrix.of_coo dt h.nrows h.ncols coo

let write ?comment m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let dt = Smatrix.dtype m in
      let field = if Dtype.is_integral dt then "integer" else "real" in
      Printf.fprintf oc "%%%%MatrixMarket matrix coordinate %s general\n"
        field;
      (match comment with
      | Some c -> Printf.fprintf oc "%% %s\n" c
      | None -> ());
      Printf.fprintf oc "%d %d %d\n" (Smatrix.nrows m) (Smatrix.ncols m)
        (Smatrix.nvals m);
      Smatrix.iter
        (fun r c x ->
          Printf.fprintf oc "%d %d %s\n" (r + 1) (c + 1) (Dtype.to_string dt x))
        m)
