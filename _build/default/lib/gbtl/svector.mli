(** Sparse GraphBLAS vector: sorted (index, value) arrays plus a logical
    size.  Stored entries are explicit — a stored zero is distinct from an
    absent entry, per the GraphBLAS data model.  Outputs of operations are
    written in place (GBTL's pass-by-reference convention). *)

type 'a t

exception Dimension_mismatch of string
exception Index_out_of_bounds of string

val create : 'a Dtype.t -> int -> 'a t
(** Empty vector of the given logical size. *)

val dtype : 'a t -> 'a Dtype.t
val size : 'a t -> int
val nvals : 'a t -> int

val of_coo : ?dup:'a Binop.t -> 'a Dtype.t -> int -> (int * 'a) list -> 'a t
(** Build from coordinate data; duplicates are combined with [dup]
    (default: last one wins, matching GrB_SECOND).
    @raise Index_out_of_bounds *)

val of_dense : 'a Dtype.t -> 'a array -> 'a t
(** Stores every element, including zeros (PyGB's copy-from-list
    constructor). *)

val of_dense_drop_zeros : 'a Dtype.t -> 'a array -> 'a t
(** Stores only elements that are not the dtype's zero — the adjacency
    convention used by the graph converters. *)

val get : 'a t -> int -> 'a option
val get_exn : 'a t -> int -> 'a
(** @raise Not_found *)

val mem : 'a t -> int -> bool
val set : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit
val clear : 'a t -> unit
val dup : 'a t -> 'a t

val replace_contents : 'a t -> 'a Entries.t -> unit
(** Overwrite the stored entries wholesale (used by the output-write
    step); indices must lie within [size]. *)

val entries : 'a t -> 'a Entries.t
(** Snapshot of the stored entries. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> int -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_alist : 'a t -> (int * 'a) list
val to_dense : fill:'a -> 'a t -> 'a array
val cast : into:'b Dtype.t -> 'a t -> 'b t
val map : 'a t -> f:('a -> 'a) -> 'a t
val map_inplace : 'a t -> f:('a -> 'a) -> unit

val to_bool_dense : 'a t -> bool array
(** Value-coerced truthiness per index (absent = [false]) — the mask
    interpretation of a vector. *)

val equal : 'a t -> 'a t -> bool
(** Same size, same structure, same values (dtype comparison). *)

val pp : Format.formatter -> 'a t -> unit

(** {2 Direct access for kernels}

    Live internal buffers: only the first [nvals] cells are meaningful and
    they must not be mutated by callers. *)

val unsafe_indices : 'a t -> int array
val unsafe_values : 'a t -> 'a array
