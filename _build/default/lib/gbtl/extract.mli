(** [extract] — Table I: [C<M,z> = C ⊙ A(i,j)], [w<m,z> = w ⊙ u(i)].
    Index lists may contain duplicates (an index may be selected twice). *)

val matrix :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose:bool ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  Index_set.t ->
  Index_set.t ->
  unit
(** [matrix ~out a rows cols] — [out] must have shape
    [length rows × length cols]. *)

val column :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  ?transpose:bool ->
  out:'a Svector.t ->
  'a Smatrix.t ->
  Index_set.t ->
  int ->
  unit
(** [column ~out a rows j] — extracts [A(rows, j)] ([A(j, rows)] with
    [transpose], i.e. a row). *)

val vector :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  out:'a Svector.t ->
  'a Svector.t ->
  Index_set.t ->
  unit
