lib/gbtl/mask.ml: Array Dtype List Printf Smatrix Svector
