lib/gbtl/entries.mli:
