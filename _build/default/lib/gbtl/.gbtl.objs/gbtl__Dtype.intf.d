lib/gbtl/dtype.mli: Format
