lib/gbtl/index_set.mli: Format
