lib/gbtl/output.mli: Binop Entries Mask Smatrix Svector
