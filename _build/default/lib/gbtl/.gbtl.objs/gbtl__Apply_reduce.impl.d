lib/gbtl/apply_reduce.ml: Array Binop Entries Mask Monoid Output Printf Smatrix Svector Unaryop
