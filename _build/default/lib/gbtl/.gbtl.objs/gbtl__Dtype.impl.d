lib/gbtl/dtype.ml: Bool Float Format Int Int32 Int64 Printf
