lib/gbtl/smatrix.mli: Binop Dtype Entries Format Svector
