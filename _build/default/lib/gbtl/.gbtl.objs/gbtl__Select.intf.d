lib/gbtl/select.mli: Binop Mask Smatrix Svector
