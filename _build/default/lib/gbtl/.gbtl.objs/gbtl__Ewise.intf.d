lib/gbtl/ewise.mli: Binop Entries Mask Smatrix Svector
