lib/gbtl/matrix_market.mli: Dtype Smatrix
