lib/gbtl/select.ml: Array Dtype Entries List Mask Output Printf Smatrix Svector
