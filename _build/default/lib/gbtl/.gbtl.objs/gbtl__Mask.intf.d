lib/gbtl/mask.mli: Smatrix Svector
