lib/gbtl/extract.mli: Binop Index_set Mask Smatrix Svector
