lib/gbtl/binop.mli: Dtype
