lib/gbtl/arith.mli: Dtype
