lib/gbtl/apply_reduce.mli: Binop Mask Monoid Smatrix Svector Unaryop
