lib/gbtl/monoid.mli: Binop Dtype Format
