lib/gbtl/matrix_market.ml: Dtype Fun List Printf Smatrix String Unaryop
