lib/gbtl/svector.mli: Binop Dtype Entries Format
