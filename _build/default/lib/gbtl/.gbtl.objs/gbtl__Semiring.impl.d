lib/gbtl/semiring.ml: Binop Format Monoid Printf
