lib/gbtl/unaryop.mli: Binop Dtype
