lib/gbtl/extract.ml: Array Entries Index_set Mask Output Printf Smatrix Svector
