lib/gbtl/kronecker.ml: Array Binop Entries Mask Output Printf Smatrix
