lib/gbtl/spa.mli: Entries
