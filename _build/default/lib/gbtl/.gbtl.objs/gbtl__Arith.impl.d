lib/gbtl/arith.ml: Bool Dtype Fun Int Int64
