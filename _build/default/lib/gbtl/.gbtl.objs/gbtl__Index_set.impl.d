lib/gbtl/index_set.ml: Array Format Fun Hashtbl Printf String
