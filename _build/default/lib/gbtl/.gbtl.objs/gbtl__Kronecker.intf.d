lib/gbtl/kronecker.mli: Binop Mask Smatrix
