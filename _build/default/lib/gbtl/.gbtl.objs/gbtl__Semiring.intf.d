lib/gbtl/semiring.mli: Binop Dtype Format Monoid
