lib/gbtl/smatrix.ml: Array Binop Dtype Entries Format Int List Printf Svector
