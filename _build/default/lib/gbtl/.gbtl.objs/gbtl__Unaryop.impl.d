lib/gbtl/unaryop.ml: Arith Binop Dtype Fun Hashtbl List Printf String
