lib/gbtl/assign.ml: Array Binop Entries Index_set Int Mask Option Output Printf Smatrix Svector
