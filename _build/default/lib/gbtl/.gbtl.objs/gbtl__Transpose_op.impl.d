lib/gbtl/transpose_op.ml: Array Mask Output Printf Smatrix
