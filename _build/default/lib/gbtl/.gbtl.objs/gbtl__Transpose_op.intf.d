lib/gbtl/transpose_op.mli: Binop Mask Smatrix
