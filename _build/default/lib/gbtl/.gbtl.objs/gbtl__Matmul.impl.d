lib/gbtl/matmul.ml: Array Entries Mask Output Printf Semiring Smatrix Spa Svector
