lib/gbtl/binop.ml: Arith Dtype Hashtbl List String
