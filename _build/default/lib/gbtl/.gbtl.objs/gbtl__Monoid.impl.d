lib/gbtl/monoid.ml: Binop Dtype Format
