lib/gbtl/entries.ml: Array Int List
