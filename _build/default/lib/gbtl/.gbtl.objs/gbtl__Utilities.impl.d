lib/gbtl/utilities.ml: Array Dtype List Smatrix Svector
