lib/gbtl/utilities.mli: Dtype Smatrix Svector
