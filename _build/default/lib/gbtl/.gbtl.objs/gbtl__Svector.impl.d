lib/gbtl/svector.ml: Array Binop Dtype Entries Format Int List Printf
