lib/gbtl/spa.ml: Array Entries Int
