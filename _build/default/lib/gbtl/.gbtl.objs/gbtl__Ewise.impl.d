lib/gbtl/ewise.ml: Array Binop Entries Mask Output Printf Smatrix Svector
