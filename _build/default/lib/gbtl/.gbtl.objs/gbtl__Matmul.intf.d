lib/gbtl/matmul.mli: Binop Mask Semiring Smatrix Svector
