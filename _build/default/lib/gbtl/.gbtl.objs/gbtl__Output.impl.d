lib/gbtl/output.ml: Array Binop Entries Mask Option Smatrix Svector
