lib/gbtl/assign.mli: Binop Index_set Mask Smatrix Svector
