(** [assign] — Table I: writing a container or a scalar into a selected
    region of the output ([C<M,z>(i,j) = C(i,j) ⊙ A] and friends).

    GrB_assign semantics: the mask spans the {e whole} output (not just
    the region), the region's old entries not covered by the source are
    deleted (unless an accumulator is given), and [replace] clears
    masked-out entries everywhere in the output.  Target indices must be
    duplicate-free. *)

val vector :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  out:'a Svector.t ->
  'a Svector.t ->
  Index_set.t ->
  unit
(** [vector ~out u idx] — [w<m,z>(idx) = u]; [u] has length [length idx]. *)

val vector_scalar :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  out:'a Svector.t ->
  'a ->
  Index_set.t ->
  unit
(** Sets every selected position to the scalar (the BFS
    [levels<frontier> = depth] idiom). *)

val matrix :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  Index_set.t ->
  Index_set.t ->
  unit

val matrix_scalar :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  out:'a Smatrix.t ->
  'a ->
  Index_set.t ->
  Index_set.t ->
  unit
