type 'a t = {
  mutable idx : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { idx = [||]; vals = [||]; len = 0 }

let length e = e.len

let grow e v =
  let cap = Array.length e.idx in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let idx' = Array.make cap' 0 and vals' = Array.make cap' v in
  Array.blit e.idx 0 idx' 0 e.len;
  Array.blit e.vals 0 vals' 0 e.len;
  e.idx <- idx';
  e.vals <- vals'

let push e i v =
  assert (e.len = 0 || e.idx.(e.len - 1) < i);
  if e.len = Array.length e.idx then grow e v;
  e.idx.(e.len) <- i;
  e.vals.(e.len) <- v;
  e.len <- e.len + 1

let get_idx e k =
  assert (k < e.len);
  e.idx.(k)

let get_val e k =
  assert (k < e.len);
  e.vals.(k)

let iter f e =
  for k = 0 to e.len - 1 do
    f e.idx.(k) e.vals.(k)
  done

let to_alist e =
  let rec loop k acc =
    if k < 0 then acc else loop (k - 1) ((e.idx.(k), e.vals.(k)) :: acc)
  in
  loop (e.len - 1) []

let of_arrays_unsafe idx vals ~len =
  assert (Array.length idx >= len && Array.length vals >= len);
  { idx; vals; len }

let of_alist l =
  let sorted = List.sort (fun (i, _) (j, _) -> Int.compare i j) l in
  let e = create () in
  List.iter (fun (i, v) -> push e i v) sorted;
  e
