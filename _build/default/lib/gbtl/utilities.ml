let scale_rows m scale_of_row =
  let rowptr = Smatrix.unsafe_rowptr m and vals = Smatrix.unsafe_values m in
  for r = 0 to Smatrix.nrows m - 1 do
    let s = scale_of_row r in
    if s <> 0.0 then
      for p = rowptr.(r) to rowptr.(r + 1) - 1 do
        vals.(p) <- vals.(p) /. s
      done
  done

let normalize_rows m =
  let rowptr = Smatrix.unsafe_rowptr m and vals = Smatrix.unsafe_values m in
  let sums = Array.make (Smatrix.nrows m) 0.0 in
  for r = 0 to Smatrix.nrows m - 1 do
    for p = rowptr.(r) to rowptr.(r + 1) - 1 do
      sums.(r) <- sums.(r) +. vals.(p)
    done
  done;
  scale_rows m (fun r -> sums.(r))

let normalize_cols m =
  let sums = Array.make (Smatrix.ncols m) 0.0 in
  Smatrix.iter (fun _ c x -> sums.(c) <- sums.(c) +. x) m;
  let colidx = Smatrix.unsafe_colidx m and vals = Smatrix.unsafe_values m in
  let rowptr = Smatrix.unsafe_rowptr m in
  for p = 0 to rowptr.(Smatrix.nrows m) - 1 do
    let s = sums.(colidx.(p)) in
    if s <> 0.0 then vals.(p) <- vals.(p) /. s
  done

let filter_matrix m pred =
  let triples =
    Smatrix.fold
      (fun acc r c x -> if pred r c then (r, c, x) :: acc else acc)
      [] m
  in
  Smatrix.of_coo (Smatrix.dtype m) (Smatrix.nrows m) (Smatrix.ncols m)
    (List.rev triples)

let lower_triangle ?(strict = true) m =
  filter_matrix m (fun r c -> if strict then c < r else c <= r)

let upper_triangle ?(strict = true) m =
  filter_matrix m (fun r c -> if strict then c > r else c >= r)

let identity dt n =
  Smatrix.of_coo dt n n (List.init n (fun i -> (i, i, Dtype.one dt)))

let diag v =
  let n = Svector.size v in
  let triples = Svector.fold (fun acc i x -> (i, i, x) :: acc) [] v in
  Smatrix.of_coo (Svector.dtype v) n n (List.rev triples)

let row_degrees m = Array.init (Smatrix.nrows m) (Smatrix.row_nvals m)
