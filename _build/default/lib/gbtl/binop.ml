type 'a t = { name : string; f : 'a -> 'a -> 'a }

exception Unknown_operator of string

let names =
  [ "LogicalOr"; "LogicalAnd"; "LogicalXor"; "Equal"; "NotEqual";
    "GreaterThan"; "LessThan"; "GreaterEqual"; "LessEqual"; "Times";
    "Div"; "Minus"; "First"; "Second"; "Min"; "Max"; "Plus" ]

let is_known n = List.mem n names

let user_table : (string, float -> float -> float) Hashtbl.t =
  Hashtbl.create 8

let register_user name f = Hashtbl.replace user_table name f

let user_registered name = Hashtbl.mem user_table name

let user_prefix = "user:"

let lookup_user name =
  let n = String.length user_prefix in
  if String.length name > n && String.sub name 0 n = user_prefix then
    Hashtbl.find_opt user_table (String.sub name n (String.length name - n))
  else None

let of_name (type a) name (dt : a Dtype.t) : a t =
  let a = Arith.make dt in
  let cmp op = fun x y -> a.of_bool (op x y) in
  let f =
    match name with
    | "Plus" -> a.add
    | "Minus" -> a.sub
    | "Times" -> a.mul
    | "Div" -> a.div
    | "Min" -> a.min
    | "Max" -> a.max
    | "First" -> fun x _ -> x
    | "Second" -> fun _ y -> y
    | "LogicalOr" -> fun x y -> a.of_bool (a.to_bool x || a.to_bool y)
    | "LogicalAnd" -> fun x y -> a.of_bool (a.to_bool x && a.to_bool y)
    | "LogicalXor" -> fun x y -> a.of_bool (a.to_bool x <> a.to_bool y)
    | "Equal" -> cmp a.eq
    | "NotEqual" -> cmp (fun x y -> not (a.eq x y))
    | "LessThan" -> cmp a.lt
    | "GreaterThan" -> cmp (fun x y -> a.lt y x)
    | "LessEqual" -> cmp (fun x y -> not (a.lt y x))
    | "GreaterEqual" -> cmp (fun x y -> not (a.lt x y))
    | other -> (
      match lookup_user other with
      | Some g ->
        fun x y ->
          Dtype.of_float dt (g (Dtype.to_float dt x) (Dtype.to_float dt y))
      | None -> raise (Unknown_operator other))
  in
  { name; f }

let make name f = { name = "user:" ^ name; f }

let apply op x y = op.f x y

let plus dt = of_name "Plus" dt
let minus dt = of_name "Minus" dt
let times dt = of_name "Times" dt
let div dt = of_name "Div" dt
let min dt = of_name "Min" dt
let max dt = of_name "Max" dt
let first dt = of_name "First" dt
let second dt = of_name "Second" dt
let logical_or dt = of_name "LogicalOr" dt
let logical_and dt = of_name "LogicalAnd" dt
let logical_xor dt = of_name "LogicalXor" dt
let equal dt = of_name "Equal" dt
let not_equal dt = of_name "NotEqual" dt
let greater_than dt = of_name "GreaterThan" dt
let less_than dt = of_name "LessThan" dt
let greater_equal dt = of_name "GreaterEqual" dt
let less_equal dt = of_name "LessEqual" dt
