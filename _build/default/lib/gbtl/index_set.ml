type t =
  | All
  | List of int array
  | Range of { start : int; stop : int }

exception Invalid_index of string

let length t dim =
  match t with
  | All -> dim
  | List a -> Array.length a
  | Range { start; stop } -> max 0 (stop - start)

let resolve t dim =
  match t with
  | All -> Array.init dim Fun.id
  | List a ->
    Array.iter
      (fun i ->
        if i < 0 || i >= dim then
          raise
            (Invalid_index
               (Printf.sprintf "index %d outside [0, %d)" i dim)))
      a;
    Array.copy a
  | Range { start; stop } ->
    if start < 0 || stop > dim || start > stop then
      raise
        (Invalid_index
           (Printf.sprintf "range [%d, %d) invalid for dimension %d" start
              stop dim));
    Array.init (stop - start) (fun k -> start + k)

let check_no_duplicates a =
  let seen = Hashtbl.create (Array.length a) in
  Array.iter
    (fun i ->
      if Hashtbl.mem seen i then
        raise (Invalid_index (Printf.sprintf "duplicate index %d in assign" i));
      Hashtbl.add seen i ())
    a

let pp fmt = function
  | All -> Format.pp_print_string fmt "All"
  | List a ->
    Format.fprintf fmt "[%s]"
      (String.concat "; " (Array.to_list (Array.map string_of_int a)))
  | Range { start; stop } -> Format.fprintf fmt "%d:%d" start stop
