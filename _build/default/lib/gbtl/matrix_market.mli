(** Matrix Market (coordinate) reader/writer — the file format of the
    paper's Fig. 11 container-lifecycle experiment.

    Supported: [matrix coordinate real|integer|pattern
    general|symmetric|skew-symmetric].  Symmetric inputs are expanded to
    both triangles on read.  One-based indices per the format. *)

exception Parse_error of string

type field = Real | Integer | Pattern
type symmetry = General | Symmetric | Skew_symmetric

type header = {
  field : field;
  symmetry : symmetry;
  nrows : int;
  ncols : int;
  nnz : int;  (** entry count as declared (before symmetry expansion) *)
}

val read_header : in_channel -> header
(** Consumes the banner, comments and size line. @raise Parse_error *)

val read : 'a Dtype.t -> string -> 'a Smatrix.t
(** Read a file into a matrix of the given dtype (values cast from the
    file's field type; [Pattern] entries become the dtype's one).
    @raise Parse_error | Sys_error *)

val read_coo : 'a Dtype.t -> string -> header * (int * int * 'a) list
(** Like {!read} but stops at the coordinate list (already expanded for
    symmetry and zero-based) — the DSL's "load into interpreter lists
    first" path measures this stage separately. *)

val write : ?comment:string -> 'a Smatrix.t -> string -> unit
(** Writes [matrix coordinate real general] (or [integer] for integral
    dtypes). *)
