(** Monoids: a binary operator together with its identity element.

    Mirrors [gb.Monoid (op, identity)] from the paper's Fig. 6, where the
    identity can be given by name ("MinIdentity" is the dtype's largest
    value, so that [Min] has it as identity). *)

type 'a t = private {
  op : 'a Binop.t;
  identity : 'a;
  identity_name : string;
}

exception Unknown_identity of string

val identity_names : string list
(** ["Zero"; "One"; "MinIdentity"; "MaxIdentity"; "False"; "True"] —
    numeric literals (e.g. ["0.5"]) are also accepted by {!of_names},
    enabling custom monoids over user-defined operators. *)

val make : 'a Dtype.t -> 'a Binop.t -> 'a -> 'a t
(** Identity given as a value; its printed form becomes the identity
    name in JIT signatures. *)

val of_names : op:string -> identity:string -> 'a Dtype.t -> 'a t
(** Both parts by name, e.g. [of_names ~op:"Min" ~identity:"MinIdentity"].
    @raise Binop.Unknown_operator | Unknown_identity *)

val plus : 'a Dtype.t -> 'a t
val times : 'a Dtype.t -> 'a t
val min : 'a Dtype.t -> 'a t
val max : 'a Dtype.t -> 'a t
val logical_or : 'a Dtype.t -> 'a t
val logical_and : 'a Dtype.t -> 'a t
val logical_xor : 'a Dtype.t -> 'a t

val reduce : 'a t -> 'a -> 'a -> 'a
val pp : Format.formatter -> 'a t -> unit
