(** Binary operators of GBTL's [algebra.hpp] (paper Fig. 6).

    All seventeen operators are [T -> T -> T] on a single dtype, with
    comparison operators returning the dtype's 0/1 encoding, as in GBTL.
    Operators are constructible by string name — the names are what flows
    through the DSL and into JIT kernel signatures. *)

type 'a t = private { name : string; f : 'a -> 'a -> 'a }

exception Unknown_operator of string

val names : string list
(** The seventeen GBTL binary operator names. *)

val is_known : string -> bool

val of_name : string -> 'a Dtype.t -> 'a t
(** @raise Unknown_operator if [name] is not in {!names}. *)

val make : string -> ('a -> 'a -> 'a) -> 'a t
(** Escape hatch for user-defined operators (a PyGB future-work feature we
    implement; the name participates in JIT signatures prefixed with
    ["user:"]). *)

val register_user : string -> (float -> float -> float) -> unit
(** [register_user "cap" f] makes ["user:cap"] resolvable by {!of_name}
    at {e every} dtype: operands are converted to float, combined with
    [f], and converted back (with the dtype's normalization).  This is
    the paper's §VIII "user-defined operators" feature — names flow
    through context stacks and JIT signatures like built-in operators
    (such kernels always use the closure backend).  Re-registering a name
    replaces it. *)

val user_registered : string -> bool
(** [user_registered "cap"] — whether the bare name is registered. *)

val apply : 'a t -> 'a -> 'a -> 'a

(** Convenience constructors for the common operators. *)

val plus : 'a Dtype.t -> 'a t
val minus : 'a Dtype.t -> 'a t
val times : 'a Dtype.t -> 'a t
val div : 'a Dtype.t -> 'a t
val min : 'a Dtype.t -> 'a t
val max : 'a Dtype.t -> 'a t
val first : 'a Dtype.t -> 'a t
val second : 'a Dtype.t -> 'a t
val logical_or : 'a Dtype.t -> 'a t
val logical_and : 'a Dtype.t -> 'a t
val logical_xor : 'a Dtype.t -> 'a t
val equal : 'a Dtype.t -> 'a t
val not_equal : 'a Dtype.t -> 'a t
val greater_than : 'a Dtype.t -> 'a t
val less_than : 'a Dtype.t -> 'a t
val greater_equal : 'a Dtype.t -> 'a t
val less_equal : 'a Dtype.t -> 'a t
