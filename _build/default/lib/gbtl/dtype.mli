(** Scalar element types of the GraphBLAS containers.

    GraphBLAS (and GBTL) parameterize containers and operations over the
    eleven C plain-old-data types.  We mirror them with a GADT so that a
    kernel specialized at one ['a t] witness is monomorphic, exactly like
    an instantiated C++ template.

    Representation choices (documented deviations in DESIGN.md §10):
    - [Int8]..[Int32] and [UInt8]..[UInt32] are stored in a native [int]
      and wrapped to their width after every arithmetic operation.
    - [Int64] is stored in a native 63-bit [int].
    - [UInt64] is stored in an [int64] with unsigned comparison/division.
    - [FP32] is stored in a [float] and rounded to single precision
      whenever a value is normalized. *)

type _ t =
  | Bool : bool t
  | Int8 : int t
  | Int16 : int t
  | Int32 : int t
  | Int64 : int t
  | UInt8 : int t
  | UInt16 : int t
  | UInt32 : int t
  | UInt64 : int64 t
  | FP32 : float t
  | FP64 : float t

(** Existentially packed dtype, used by the dynamically typed DSL layer. *)
type packed = P : 'a t -> packed

(** Type-equality witness used to unpack existentials safely. *)
type (_, _) eq = Equal : ('a, 'a) eq

val name : _ t -> string
(** Canonical name, matching the C type spelling used in JIT signatures
    (e.g. ["int64_t"], ["double"]). *)

val short_name : _ t -> string
(** Compact name used in cache keys and test labels (e.g. ["i64"]). *)

val of_name : string -> packed
(** Inverse of both {!name} and {!short_name}.
    @raise Invalid_argument on unknown names. *)

val all : packed list
(** The eleven dtypes, in upcast-rank order. *)

val rank : _ t -> int
(** Position in the C usual-arithmetic-conversion order used for automatic
    upcasts: bool < int8 < uint8 < ... < uint64 < float < double. *)

val size_bits : _ t -> int

val is_integral : _ t -> bool
val is_signed : _ t -> bool
val is_float : _ t -> bool

val equal_witness : 'a t -> 'b t -> ('a, 'b) eq option
val equal_packed : packed -> packed -> bool

val promote : packed -> packed -> packed
(** [promote a b] is the common dtype both operands upcast to: the one of
    greater {!rank}. *)

val normalize : 'a t -> 'a -> 'a
(** Wrap/round a raw value into the dtype's domain (sign-extend + mask for
    small integers, single-precision rounding for [FP32]). *)

val cast : from:'a t -> into:'b t -> 'a -> 'b
(** Value conversion following C conversion rules (truncation towards zero
    for float->int, wrapping for narrowing integer casts). *)

val zero : 'a t -> 'a
val one : 'a t -> 'a

val min_value : 'a t -> 'a
(** Most negative representable value ([neg_infinity] for floats). *)

val max_value : 'a t -> 'a
(** Largest representable value ([infinity] for floats). *)

val of_float : 'a t -> float -> 'a
val to_float : 'a t -> 'a -> float
val of_int : 'a t -> int -> 'a
val to_bool : 'a t -> 'a -> bool
(** C truthiness: nonzero is [true]. *)

val of_bool : 'a t -> bool -> 'a

val to_string : 'a t -> 'a -> string
val pp_value : 'a t -> Format.formatter -> 'a -> unit

val compare_values : 'a t -> 'a -> 'a -> int
(** Total order consistent with the dtype's arithmetic comparison
    (unsigned for [UInt64]). *)

val equal_values : 'a t -> 'a -> 'a -> bool
