(** Structural/value selection — the GrB_select family (GraphBLAS 1.3),
    an extension beyond the paper's operation set.  Keeps the entries
    satisfying a predicate; everything else is dropped.  [tril]/[triu]
    generalize {!Utilities.lower_triangle}; [value_*] predicates are what
    k-truss-style algorithms prune with. *)

type predicate =
  | Tril of int  (** keep entries with [col - row <= k] *)
  | Triu of int  (** keep entries with [col - row >= k] *)
  | Diag
  | Offdiag
  | Nonzero
  | Value_gt of float
  | Value_ge of float
  | Value_lt of float
  | Value_le of float
  | Value_eq of float
  | Value_ne of float

val matrix :
  ?mask:Mask.mmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  predicate ->
  out:'a Smatrix.t ->
  'a Smatrix.t ->
  unit
(** [C<M,z> = C ⊙ select(pred, A)]; value predicates compare through a
    float view of the dtype. *)

val vector :
  ?mask:Mask.vmask ->
  ?accum:'a Binop.t ->
  ?replace:bool ->
  predicate ->
  out:'a Svector.t ->
  'a Svector.t ->
  unit
(** Positional predicates treat the index as the column with row 0. *)

val keep_matrix : 'a Smatrix.t -> (int -> int -> 'a -> bool) -> 'a Smatrix.t
(** Pure functional form with an arbitrary predicate. *)
