(** Helpers GBTL ships outside the core operation set; the paper's
    PageRank uses [normalize_rows], triangle counting uses the triangular
    splits. *)

val normalize_rows : float Smatrix.t -> unit
(** Scale each row so its stored values sum to 1 (rows with zero sum are
    left untouched).  In place. *)

val normalize_cols : float Smatrix.t -> unit

val lower_triangle : ?strict:bool -> 'a Smatrix.t -> 'a Smatrix.t
(** Entries with [col <= row] ([col < row] when [strict], the default is
    [strict = true] as triangle counting needs the strict part). *)

val upper_triangle : ?strict:bool -> 'a Smatrix.t -> 'a Smatrix.t

val identity : 'a Dtype.t -> int -> 'a Smatrix.t
(** n×n identity with the dtype's one. *)

val diag : 'a Svector.t -> 'a Smatrix.t
(** Square matrix with the vector on the diagonal. *)

val row_degrees : 'a Smatrix.t -> int array
(** Stored entries per row. *)
