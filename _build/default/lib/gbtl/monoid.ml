type 'a t = { op : 'a Binop.t; identity : 'a; identity_name : string }

exception Unknown_identity of string

let identity_names =
  [ "Zero"; "One"; "MinIdentity"; "MaxIdentity"; "False"; "True" ]

let make dt op identity = { op; identity; identity_name = Dtype.to_string dt identity }

let identity_of_name (type a) name (dt : a Dtype.t) : a =
  match name with
  | "Zero" | "False" -> Dtype.zero dt
  | "One" | "True" -> Dtype.one dt
  | "MinIdentity" -> Dtype.max_value dt
  | "MaxIdentity" -> Dtype.min_value dt
  | other -> (
    (* numeric literals make custom (user-operator) monoids expressible
       by name, e.g. identity "0.5" *)
    match float_of_string_opt other with
    | Some f -> Dtype.of_float dt f
    | None -> raise (Unknown_identity other))

let of_names ~op ~identity dt =
  {
    op = Binop.of_name op dt;
    identity = identity_of_name identity dt;
    identity_name = identity;
  }

let plus dt = of_names ~op:"Plus" ~identity:"Zero" dt
let times dt = of_names ~op:"Times" ~identity:"One" dt
let min dt = of_names ~op:"Min" ~identity:"MinIdentity" dt
let max dt = of_names ~op:"Max" ~identity:"MaxIdentity" dt
let logical_or dt = of_names ~op:"LogicalOr" ~identity:"False" dt
let logical_and dt = of_names ~op:"LogicalAnd" ~identity:"True" dt
let logical_xor dt = of_names ~op:"LogicalXor" ~identity:"False" dt

let reduce m x y = m.op.f x y

let pp fmt m =
  Format.fprintf fmt "Monoid(%s, %s)" m.op.Binop.name m.identity_name
