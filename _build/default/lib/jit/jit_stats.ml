type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;
  native_failures : int;
  compile_seconds : float;
}

let lookups = ref 0
let memory_hits = ref 0
let disk_hits = ref 0
let compiles = ref 0
let native_compiles = ref 0
let native_failures = ref 0
let compile_seconds = ref 0.0

let record_lookup () = incr lookups
let record_memory_hit () = incr memory_hits
let record_disk_hit () = incr disk_hits

let record_compile ~native ~seconds =
  incr compiles;
  if native then incr native_compiles;
  compile_seconds := !compile_seconds +. seconds

let record_native_failure () = incr native_failures

let snapshot () =
  { lookups = !lookups;
    memory_hits = !memory_hits;
    disk_hits = !disk_hits;
    compiles = !compiles;
    native_compiles = !native_compiles;
    native_failures = !native_failures;
    compile_seconds = !compile_seconds }

let reset () =
  lookups := 0;
  memory_hits := 0;
  disk_hits := 0;
  compiles := 0;
  native_compiles := 0;
  native_failures := 0;
  compile_seconds := 0.0

let pp fmt s =
  Format.fprintf fmt
    "lookups=%d memory_hits=%d disk_hits=%d compiles=%d (native=%d, \
     failures=%d) compile_time=%.6fs"
    s.lookups s.memory_hits s.disk_hits s.compiles s.native_compiles
    s.native_failures s.compile_seconds
