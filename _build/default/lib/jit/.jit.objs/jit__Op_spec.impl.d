lib/jit/op_spec.ml: Binop Dtype Gbtl List Monoid Printf Semiring Unaryop
