lib/jit/jit_stats.ml: Format
