lib/jit/kernels.mli: Dtype Entries Gbtl Mask Op_spec Smatrix Svector
