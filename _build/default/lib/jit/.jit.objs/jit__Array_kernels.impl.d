lib/jit/array_kernels.ml: Array Int
