lib/jit/kernels.ml: Apply_reduce Array Array_kernels Binop Codegen Dispatch Dtype Entries Ewise Gbtl Kernel_sig List Mask Matmul Monoid Obj Op_spec Printf Semiring Smatrix String Svector Unaryop
