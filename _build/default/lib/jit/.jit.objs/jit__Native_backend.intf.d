lib/jit/native_backend.mli: Obj
