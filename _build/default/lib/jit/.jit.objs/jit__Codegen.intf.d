lib/jit/codegen.mli: Op_spec
