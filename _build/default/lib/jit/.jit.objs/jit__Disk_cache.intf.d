lib/jit/disk_cache.mli:
