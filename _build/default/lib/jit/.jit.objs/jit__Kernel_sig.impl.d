lib/jit/kernel_sig.ml: Char Format Int64 List Printf String
