lib/jit/codegen.ml: Fun List Op_spec Option Printf String
