lib/jit/dispatch.mli: Kernel_sig Obj
