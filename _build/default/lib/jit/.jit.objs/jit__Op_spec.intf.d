lib/jit/op_spec.mli: Gbtl
