lib/jit/kernel_sig.mli: Format
