lib/jit/native_backend.ml: Array Disk_cache Dynlink Filename Jit_plugin_api List Logs Printf String Sys Unix
