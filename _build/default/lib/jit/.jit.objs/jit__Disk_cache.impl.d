lib/jit/disk_cache.ml: Array Filename Printf String Sys Unix
