lib/jit/jit_stats.mli: Format
