lib/jit/dispatch.ml: Disk_cache Hashtbl Jit_stats Kernel_sig Mutex Native_backend Obj Unix
