lib/jit/array_kernels.mli:
