(** OCaml source generation for native kernels — the analogue of PyGB's
    templated [operation_binding.cpp] instantiated through [-D] defines
    (paper Fig. 9).  Generated modules are self-contained except for the
    {!Jit_plugin_api.register} call that hands the kernel to the host.

    Codegen covers the vector-kernel family (mxv, vxm, eWiseAdd/Mult,
    apply, reduce) over the [double], [int64_t] and [bool] dtypes — the
    kernels the paper's four benchmark algorithms are built from.  Other
    combinations return [None] and dispatch falls back to the closure
    backend. *)

val supported_dtype : string -> bool

val binop_expr : dtype:string -> string -> string option
(** OCaml source text of a named binary operator at a dtype. *)

val identity_expr : dtype:string -> string -> string option
val unary_expr : dtype:string -> Op_spec.unary -> string option

val mxv_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option

val vxm_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option

val ewise_source :
  kind:[ `Add | `Mult ] -> dtype:string -> op:string -> key:string ->
  string option

val ewise_fused_source :
  kind:[ `Add | `Mult ] ->
  dtype:string ->
  op:string ->
  chain:Op_spec.unary list ->
  key:string ->
  string option
(** A {e single} compiled module for [apply fk (... (apply f1 (a ⊕ b)))]
    — the paper's §V "series of operations deferred until a single binary
    module containing all of them is compiled".  [chain] is
    innermost-first. *)

val mxm_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** Gustavson row-wise SPA product (unmasked; masked products use the
    closure backend's dot kernel). *)

val apply_source :
  dtype:string -> f:Op_spec.unary -> key:string -> string option

val reduce_source :
  dtype:string -> op:string -> identity:string -> key:string -> string option
