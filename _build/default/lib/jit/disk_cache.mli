(** On-disk kernel cache (level 2 of the lookup in paper Fig. 9: memory →
    disk → compile).  Holds generated [.ml] sources, compiled [.cmxs]
    plugins, and build markers for closure-backend entries. *)

val dir : unit -> string
(** Cache directory (created on first use).  Defaults to
    [$OGB_JIT_CACHE] or [<tmpdir>/ogb-jit-cache-<uid>]. *)

val set_dir : string -> unit

val source_path : string -> string
(** [source_path hash] — where the generated source for a kernel lives. *)

val cmxs_path : string -> string
val marker_path : string -> string

val store_source : string -> string -> unit
(** [store_source hash src] *)

val read_source : string -> string option
val has_cmxs : string -> bool
val has_marker : string -> bool
val touch_marker : string -> unit
val clear : unit -> unit
(** Remove every cache artifact (used by tests and the compile bench). *)
