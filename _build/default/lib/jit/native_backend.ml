let log_src = Logs.Src.create "ogb.jit" ~doc:"ogb JIT backend"

module Log = (val Logs.src_log log_src)

(* -- locating the Jit_plugin_api compiled interfaces -- *)

let api_objs_suffix =
  Filename.concat
    (Filename.concat "lib" "jit_api")
    ".jit_plugin_api.objs"

let candidate_roots () =
  let rec ancestors acc dir n =
    if n = 0 || dir = Filename.dirname dir then acc
    else ancestors (dir :: acc) (Filename.dirname dir) (n - 1)
  in
  let from_exe = ancestors [] (Filename.dirname Sys.executable_name) 8 in
  let from_cwd = ancestors [] (Sys.getcwd ()) 8 in
  from_exe @ from_cwd

let find_api_dirs () =
  match Sys.getenv_opt "OGB_JIT_INCLUDE" with
  | Some dirs -> Some (String.split_on_char ':' dirs)
  | None ->
    let check root =
      let objs =
        Filename.concat root (Filename.concat "_build/default" api_objs_suffix)
      in
      let byte = Filename.concat objs "byte" in
      let native = Filename.concat objs "native" in
      if Sys.file_exists (Filename.concat byte "jit_plugin_api.cmi") then
        Some [ byte; native ]
      else None
    in
    List.find_map check (candidate_roots ())

let find_ocamlopt () =
  let from_path =
    match Sys.getenv_opt "PATH" with
    | None -> None
    | Some path ->
      List.find_map
        (fun dir ->
          let p = Filename.concat dir "ocamlopt" in
          if Sys.file_exists p then Some p else None)
        (String.split_on_char ':' path)
  in
  from_path

(* -- compile + load -- *)

let run_command argv ~stderr_file =
  let fd =
    Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout fd
  in
  Unix.close fd;
  let _, status = Unix.waitpid [] pid in
  status

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error _ -> ""

let compile ~hash =
  match find_ocamlopt (), find_api_dirs () with
  | None, _ -> Error "ocamlopt not found on PATH"
  | _, None -> Error "Jit_plugin_api build artifacts not found"
  | Some ocamlopt, Some incs ->
    let src = Disk_cache.source_path hash in
    let out = Disk_cache.cmxs_path hash in
    let inc_args = List.concat_map (fun d -> [ "-I"; d ]) incs in
    let argv =
      Array.of_list
        ([ ocamlopt; "-shared"; "-O2" ] @ inc_args @ [ "-o"; out; src ])
    in
    let stderr_file = Filename.concat (Disk_cache.dir ()) (hash ^ ".stderr") in
    (match run_command argv ~stderr_file with
    | Unix.WEXITED 0 -> Ok out
    | Unix.WEXITED n ->
      Error
        (Printf.sprintf "ocamlopt exited %d: %s" n (read_file stderr_file))
    | Unix.WSIGNALED n | Unix.WSTOPPED n ->
      Error (Printf.sprintf "ocamlopt killed by signal %d" n))

let load ~cmxs ~key =
  match Dynlink.loadfile_private cmxs with
  | () -> (
    match Jit_plugin_api.lookup key with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "plugin loaded but key %S not registered" key))
  | exception Dynlink.Error e -> Error (Dynlink.error_message e)

let compile_and_load ~hash ~source ~key =
  Disk_cache.store_source hash source;
  match compile ~hash with
  | Error _ as e -> e
  | Ok cmxs -> load ~cmxs ~key

let load_cached ~hash ~key = load ~cmxs:(Disk_cache.cmxs_path hash) ~key

(* -- availability probe: actually compile and load a trivial kernel -- *)

let probe_result : (unit, string) result option ref = ref None

let probe () =
  if not Dynlink.is_native then Error "bytecode runtime (Dynlink not native)"
  else
    match find_ocamlopt (), find_api_dirs () with
    | None, _ -> Error "ocamlopt not found on PATH"
    | _, None -> Error "Jit_plugin_api build artifacts not found"
    | Some _, Some _ -> (
      let key = Printf.sprintf "probe|%d" (Unix.getpid ()) in
      let hash = Printf.sprintf "probe_%d" (Unix.getpid ()) in
      let source =
        Printf.sprintf
          "let kernel (x : Obj.t) : Obj.t = x\n\
           let () = Jit_plugin_api.register %S (Obj.repr kernel)\n"
          key
      in
      match compile_and_load ~hash ~source ~key with
      | Ok _ -> Ok ()
      | Error e -> Error e)

let probe_cached () =
  match !probe_result with
  | Some r -> r
  | None ->
    let r = probe () in
    (match r with
    | Ok () -> Log.info (fun m -> m "native JIT backend available")
    | Error e -> Log.info (fun m -> m "native JIT backend unavailable: %s" e));
    probe_result := Some r;
    r

let available () = match probe_cached () with Ok () -> true | Error _ -> false

let explain () =
  match probe_cached () with
  | Ok () -> "native backend available"
  | Error e -> "native backend unavailable: " ^ e
