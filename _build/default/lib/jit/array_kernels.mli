(** The kernel algorithms on raw arrays — the bodies that dynamic
    compilation specializes.  The closure backend instantiates these with
    operator closures; the native backend's generated source is the
    monomorphized text of the same algorithms ({!Codegen}).

    ABI conventions (what crosses the [Obj.t] boundary):
    - a sparse vector is [(indices, values, nvals)], indices ascending;
    - a CSR matrix is [(rowptr, colidx, values)];
    - results come back as exactly-sized [(indices, values)] pairs. *)

type 'a ventry = int array * 'a array * int
type 'a csr = int array * int array * 'a array

val mxv :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  transpose:bool ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** [w = A ⊕.⊗ u] (or [Aᵀ ⊕.⊗ u]); output size is [nrows] ([ncols] when
    transposed). *)

val vxm :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  transpose:bool ->
  'a ventry ->
  'a csr ->
  int array * 'a array

val mxm_gustavson :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows_a:int ->
  ncols_b:int ->
  'a csr ->
  'a csr ->
  int array * int array * 'a array
(** Row-wise SPA product [C = A ⊕.⊗ B]; result as CSR
    (rowptr, colidx, values). *)

val ewise_add_v :
  op:('a -> 'a -> 'a) -> 'a ventry -> 'a ventry -> int array * 'a array

val ewise_mult_v :
  op:('a -> 'a -> 'a) -> 'a ventry -> 'a ventry -> int array * 'a array

val apply_v : f:('a -> 'a) -> 'a ventry -> int array * 'a array

val reduce_v : op:('a -> 'a -> 'a) -> identity:'a -> 'a ventry -> 'a
