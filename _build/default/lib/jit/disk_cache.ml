let default_dir () =
  match Sys.getenv_opt "OGB_JIT_CACHE" with
  | Some d -> d
  | None ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-jit-cache-%d" (Unix.getuid ()))

let the_dir = ref None

let set_dir d = the_dir := Some d

let dir () =
  let d = match !the_dir with Some d -> d | None -> default_dir () in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  the_dir := Some d;
  d

let source_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.ml" hash)
let cmxs_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.cmxs" hash)
let marker_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.built" hash)

let store_source hash src =
  let oc = open_out (source_path hash) in
  output_string oc src;
  close_out oc

let read_source hash =
  let path = source_path hash in
  if Sys.file_exists path then begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end
  else None

let has_cmxs hash = Sys.file_exists (cmxs_path hash)
let has_marker hash = Sys.file_exists (marker_path hash)

let touch_marker hash =
  let oc = open_out (marker_path hash) in
  close_out oc

let clear () =
  let d = dir () in
  Array.iter
    (fun f ->
      if String.length f >= 5 && String.sub f 0 5 = "Kern_" then
        try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
    (Sys.readdir d)
