(** Dispatch statistics: how often kernels were served from the in-memory
    table, from the on-disk cache, or freshly compiled — the data behind
    the compile-time experiment (E3 in DESIGN.md). *)

type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;  (** subset of [compiles] that ran ocamlopt *)
  native_failures : int;  (** native attempts that fell back to closures *)
  compile_seconds : float;  (** cumulative wall time spent compiling *)
}

val record_lookup : unit -> unit
val record_memory_hit : unit -> unit
val record_disk_hit : unit -> unit
val record_compile : native:bool -> seconds:float -> unit
val record_native_failure : unit -> unit
val snapshot : unit -> snapshot
val reset : unit -> unit
val pp : Format.formatter -> snapshot -> unit
