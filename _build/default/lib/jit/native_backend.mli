(** The real dynamic-compilation backend: generated kernel source is
    compiled with [ocamlopt -shared] into a [.cmxs] plugin and loaded with
    [Dynlink] — the OCaml analogue of PyGB's [g++ ... -o mod.so] +
    [import_module] (paper Fig. 9).

    Availability is probed once per process: native [Dynlink] support,
    an [ocamlopt] on PATH, and the [Jit_plugin_api] compiled interfaces
    (located via [$OGB_JIT_INCLUDE] or by searching for the dune [_build]
    tree).  When any piece is missing, dispatch silently uses the closure
    backend. *)

val available : unit -> bool

val explain : unit -> string
(** Human-readable probe outcome (for logs and the compile bench). *)

val compile_and_load :
  hash:string -> source:string -> key:string -> (Obj.t, string) result
(** Write [source] to the disk cache, compile it, [Dynlink] the result
    and look up [key] in the plugin registry. *)

val load_cached : hash:string -> key:string -> (Obj.t, string) result
(** Load a previously compiled [.cmxs] from the disk cache. *)
