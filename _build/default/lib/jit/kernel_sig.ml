type t = {
  op : string;
  dtypes : (string * string) list;
  operators : (string * string) list;
  flags : string list;
}

let sort_pairs = List.sort (fun (a, _) (b, _) -> String.compare a b)

let make ~op ?(dtypes = []) ?(operators = []) ?(flags = []) () =
  { op;
    dtypes = sort_pairs dtypes;
    operators = sort_pairs operators;
    flags = List.sort_uniq String.compare flags }

let key t =
  let pairs l = String.concat "," (List.map (fun (k, v) -> k ^ ":" ^ v) l) in
  Printf.sprintf "%s|%s|%s|%s" t.op (pairs t.dtypes) (pairs t.operators)
    (String.concat "," t.flags)

(* FNV-1a, 64-bit. *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let sanitize op =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    op

let hash_key t = Printf.sprintf "%s_%016Lx" (sanitize t.op) (fnv1a (key t))

let pp fmt t = Format.pp_print_string fmt (key t)
