let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 64

let register key v = Hashtbl.replace table key v

let lookup key = Hashtbl.find_opt table key

let registered_keys () = Hashtbl.fold (fun k _ acc -> k :: acc) table []
