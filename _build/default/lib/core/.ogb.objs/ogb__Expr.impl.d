lib/core/expr.ml: Container Context Dtype Extract Gbtl Index_set Jit Printf Select Smatrix Svector Unaryop
