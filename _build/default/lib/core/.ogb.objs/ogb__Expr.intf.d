lib/core/expr.mli: Container Gbtl Jit
