lib/core/context.ml: Domain Fun Jit List
