lib/core/ops.mli: Container Expr Gbtl Index_set Jit
