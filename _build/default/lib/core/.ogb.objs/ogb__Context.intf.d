lib/core/context.mli: Jit
