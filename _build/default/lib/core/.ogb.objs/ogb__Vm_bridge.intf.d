lib/core/vm_bridge.mli: Container Context Expr Minivm Ops
