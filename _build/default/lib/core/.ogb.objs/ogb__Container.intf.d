lib/core/container.mli: Dtype Format Gbtl Graphs Smatrix Svector
