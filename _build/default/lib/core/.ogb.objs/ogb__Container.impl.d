lib/core/container.ml: Array Dtype Format Gbtl Graphs List Matrix_market Option Printf Smatrix Svector
