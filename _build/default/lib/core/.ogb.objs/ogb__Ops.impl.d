lib/core/ops.ml: Array Assign Binop Container Context Dtype Expr Gbtl Index_set Output Printf Smatrix Svector
