lib/core/vm_bridge.ml: Array Container Context Env Expr Gbtl Interp Jit Minivm Ops Printf Value
