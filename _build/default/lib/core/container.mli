(** Dynamically typed GraphBLAS containers — the DSL's [gb.Matrix] /
    [gb.Vector].  The element dtype is packed away existentially and
    resolved at operation-dispatch time, exactly as PyGB resolves NumPy
    dtypes when an expression is evaluated (paper §V).

    Constructors take [float] data and cast into the requested dtype; the
    default dtype is [double] (Python's default float64). *)

open Gbtl

type t = Vec : 'a Dtype.t * 'a Svector.t -> t | Mat : 'a Dtype.t * 'a Smatrix.t -> t

exception Kind_error of string
(** Raised when a vector is used where a matrix is required, etc. *)

(** {2 Constructors (paper Fig. 3)} *)

val vector_dense : ?dtype:Dtype.packed -> float list -> t
(** [gb.Vector([1, 2, 3])] — every cell stored. *)

val vector_coo : ?dtype:Dtype.packed -> size:int -> (int * float) list -> t
(** [gb.Vector((vals, idx), shape=(l,))]. *)

val vector_empty : ?dtype:Dtype.packed -> int -> t
val matrix_dense : ?dtype:Dtype.packed -> float list list -> t
val matrix_coo :
  ?dtype:Dtype.packed -> nrows:int -> ncols:int -> (int * int * float) list -> t
val matrix_empty : ?dtype:Dtype.packed -> int -> int -> t

val of_edge_list : ?dtype:Dtype.packed -> Graphs.Edge_list.t -> t
(** [gb.Matrix(nx.balanced_tree(...))] — copy from a foreign graph. *)

val of_matrix_market : ?dtype:Dtype.packed -> string -> t
val of_svector : 'a Svector.t -> t
val of_smatrix : 'a Smatrix.t -> t

(** {2 Inspection} *)

val dtype : t -> Dtype.packed
val dtype_name : t -> string
val is_matrix : t -> bool
val nvals : t -> int
val size : t -> int
(** Vector length.  @raise Kind_error on matrices. *)

val shape : t -> int * int
(** Matrix shape.  @raise Kind_error on vectors. *)

val vector_entries : t -> (int * float) list
(** Entries cast to float.  @raise Kind_error on matrices. *)

val matrix_entries : t -> (int * int * float) list
val get_vector_element : t -> int -> float option
val get_matrix_element : t -> int -> int -> float option
val set_vector_element : t -> int -> float -> unit
val set_matrix_element : t -> int -> int -> float -> unit

(** {2 Structure} *)

val dup : t -> t
val clear : t -> unit
val cast : Dtype.packed -> t -> t
val equal : t -> t -> bool
(** Same kind, same dtype, same entries. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Typed views (used by the evaluator)} *)

val as_vector : 'a Dtype.t -> t -> 'a Svector.t
(** @raise Kind_error if not a vector of exactly this dtype. *)

val as_matrix : 'a Dtype.t -> t -> 'a Smatrix.t
