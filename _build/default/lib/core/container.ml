open Gbtl

type t =
  | Vec : 'a Dtype.t * 'a Svector.t -> t
  | Mat : 'a Dtype.t * 'a Smatrix.t -> t

exception Kind_error of string

let kerr fmt = Printf.ksprintf (fun s -> raise (Kind_error s)) fmt

let default_dtype = Dtype.P Dtype.FP64

let vector_dense ?(dtype = default_dtype) data =
  let (Dtype.P dt) = dtype in
  Vec
    ( dt,
      Svector.of_dense dt
        (Array.of_list (List.map (Dtype.of_float dt) data)) )

let vector_coo ?(dtype = default_dtype) ~size alist =
  let (Dtype.P dt) = dtype in
  Vec (dt, Svector.of_coo dt size (List.map (fun (i, x) -> (i, Dtype.of_float dt x)) alist))

let vector_empty ?(dtype = default_dtype) size =
  let (Dtype.P dt) = dtype in
  Vec (dt, Svector.create dt size)

let matrix_dense ?(dtype = default_dtype) rows =
  let (Dtype.P dt) = dtype in
  Mat
    ( dt,
      Smatrix.of_dense dt
        (Array.of_list
           (List.map
              (fun row ->
                Array.of_list (List.map (Dtype.of_float dt) row))
              rows)) )

let matrix_coo ?(dtype = default_dtype) ~nrows ~ncols triples =
  let (Dtype.P dt) = dtype in
  Mat
    ( dt,
      Smatrix.of_coo dt nrows ncols
        (List.map (fun (r, c, x) -> (r, c, Dtype.of_float dt x)) triples) )

let matrix_empty ?(dtype = default_dtype) nrows ncols =
  let (Dtype.P dt) = dtype in
  Mat (dt, Smatrix.create dt nrows ncols)

let of_edge_list ?(dtype = default_dtype) g =
  let (Dtype.P dt) = dtype in
  Mat (dt, Graphs.Convert.matrix_of_edges dt g)

let of_matrix_market ?(dtype = default_dtype) path =
  let (Dtype.P dt) = dtype in
  Mat (dt, Matrix_market.read dt path)

let of_svector v = Vec (Svector.dtype v, v)
let of_smatrix m = Mat (Smatrix.dtype m, m)

let dtype = function Vec (dt, _) -> Dtype.P dt | Mat (dt, _) -> Dtype.P dt

let dtype_name c =
  let (Dtype.P dt) = dtype c in
  Dtype.name dt

let is_matrix = function Mat _ -> true | Vec _ -> false

let nvals = function
  | Vec (_, v) -> Svector.nvals v
  | Mat (_, m) -> Smatrix.nvals m

let size = function
  | Vec (_, v) -> Svector.size v
  | Mat _ -> kerr "size: expected a vector, got a matrix"

let shape = function
  | Mat (_, m) -> Smatrix.shape m
  | Vec _ -> kerr "shape: expected a matrix, got a vector"

let vector_entries = function
  | Vec (dt, v) ->
    List.map (fun (i, x) -> (i, Dtype.to_float dt x)) (Svector.to_alist v)
  | Mat _ -> kerr "vector_entries: got a matrix"

let matrix_entries = function
  | Mat (dt, m) ->
    List.map (fun (r, c, x) -> (r, c, Dtype.to_float dt x)) (Smatrix.to_coo m)
  | Vec _ -> kerr "matrix_entries: got a vector"

let get_vector_element c i =
  match c with
  | Vec (dt, v) -> Option.map (Dtype.to_float dt) (Svector.get v i)
  | Mat _ -> kerr "get_vector_element: got a matrix"

let get_matrix_element c r cl =
  match c with
  | Mat (dt, m) -> Option.map (Dtype.to_float dt) (Smatrix.get m r cl)
  | Vec _ -> kerr "get_matrix_element: got a vector"

let set_vector_element c i x =
  match c with
  | Vec (dt, v) -> Svector.set v i (Dtype.of_float dt x)
  | Mat _ -> kerr "set_vector_element: got a matrix"

let set_matrix_element c r cl x =
  match c with
  | Mat (dt, m) -> Smatrix.set m r cl (Dtype.of_float dt x)
  | Vec _ -> kerr "set_matrix_element: got a vector"

let dup = function
  | Vec (dt, v) -> Vec (dt, Svector.dup v)
  | Mat (dt, m) -> Mat (dt, Smatrix.dup m)

let clear = function
  | Vec (_, v) -> Svector.clear v
  | Mat (_, m) -> Smatrix.clear m

let cast (Dtype.P into) = function
  | Vec (_, v) -> Vec (into, Svector.cast ~into v)
  | Mat (_, m) -> Mat (into, Smatrix.cast ~into m)

let equal a b =
  match a, b with
  | Vec (da, va), Vec (db, vb) -> (
    match Dtype.equal_witness da db with
    | Some Dtype.Equal -> Svector.equal va vb
    | None -> false)
  | Mat (da, ma), Mat (db, mb) -> (
    match Dtype.equal_witness da db with
    | Some Dtype.Equal -> Smatrix.equal ma mb
    | None -> false)
  | Vec _, Mat _ | Mat _, Vec _ -> false

let pp fmt = function
  | Vec (_, v) -> Svector.pp fmt v
  | Mat (_, m) -> Smatrix.pp fmt m

let to_string c = Format.asprintf "%a" pp c

let as_vector (type a) (dt : a Dtype.t) c : a Svector.t =
  match c with
  | Vec (dt', v) -> (
    match Dtype.equal_witness dt' dt with
    | Some Dtype.Equal -> v
    | None -> kerr "as_vector: dtype %s, expected %s" (Dtype.name dt') (Dtype.name dt))
  | Mat _ -> kerr "as_vector: got a matrix"

let as_matrix (type a) (dt : a Dtype.t) c : a Smatrix.t =
  match c with
  | Mat (dt', m) -> (
    match Dtype.equal_witness dt' dt with
    | Some Dtype.Equal -> m
    | None -> kerr "as_matrix: dtype %s, expected %s" (Dtype.name dt') (Dtype.name dt))
  | Vec _ -> kerr "as_matrix: got a vector"
