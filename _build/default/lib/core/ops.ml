open Gbtl

type mask = Mask of Container.t | Mask_complement of Container.t

exception Dsl_error of string

let derr fmt = Printf.ksprintf (fun s -> raise (Dsl_error s)) fmt

let mask_spec = function
  | None -> None
  | Some (Mask c) -> Some { Expr.container = c; complemented = false }
  | Some (Mask_complement c) -> Some { Expr.container = c; complemented = true }

let vmask_of = function
  | None -> Gbtl.Mask.No_vmask
  | Some spec -> (
    match spec.Expr.container with
    | Container.Vec (_, v) ->
      Gbtl.Mask.vmask ~complemented:spec.Expr.complemented v
    | Container.Mat _ -> derr "vector output masked by a matrix")

let mmask_of = function
  | None -> Gbtl.Mask.No_mmask
  | Some spec -> (
    match spec.Expr.container with
    | Container.Mat (_, m) ->
      Gbtl.Mask.mmask ~complemented:spec.Expr.complemented m
    | Container.Vec _ -> derr "matrix output masked by a vector")

let accum_binop (type a) (dt : a Dtype.t) = function
  | None -> None
  | Some name -> Some (Binop.of_name name dt)

(* The shared write step: temp (the evaluated expression) into target.
   Whole-container unmasked, unaccumulated assignment moves the evaluated
   result in wholesale (the paper's no-extra-temporary goal); everything
   else goes through the full GraphBLAS write semantics. *)
let write ?mask ?accum ~replace target temp =
  let spec = mask_spec mask in
  match target with
  | Container.Vec (dt, out)
    when spec = None && accum = None
         && Gbtl.Dtype.equal_packed (Container.dtype temp)
              (Gbtl.Dtype.P dt) -> (
    match temp with
    | Container.Vec (_, _) ->
      let v = Container.as_vector dt temp in
      if Svector.size v <> Svector.size out then
        derr "assigning a vector of size %d to one of size %d"
          (Svector.size v) (Svector.size out);
      Svector.replace_contents out (Svector.entries v)
    | Container.Mat _ -> derr "assigning a matrix result to a vector")
  | Container.Mat (dt, out)
    when spec = None && accum = None
         && Gbtl.Dtype.equal_packed (Container.dtype temp)
              (Gbtl.Dtype.P dt) -> (
    match temp with
    | Container.Mat (_, _) ->
      let m = Container.as_matrix dt temp in
      if Smatrix.shape m <> Smatrix.shape out then
        derr "assigning a %dx%d result to a %dx%d matrix" (Smatrix.nrows m)
          (Smatrix.ncols m) (Smatrix.nrows out) (Smatrix.ncols out);
      Smatrix.replace_contents out m
    | Container.Vec _ -> derr "assigning a vector result to a matrix")
  | Container.Vec (dt, out) ->
    let temp = Expr.unify (Dtype.P dt) temp in
    let v =
      match temp with
      | Container.Vec (_, _) -> Container.as_vector dt temp
      | Container.Mat _ -> derr "assigning a matrix result to a vector"
    in
    if Svector.size v <> Svector.size out then
      derr "assigning a vector of size %d to one of size %d" (Svector.size v)
        (Svector.size out);
    Output.write_vector ~mask:(vmask_of spec) ~accum:(accum_binop dt accum)
      ~replace ~out ~t:(Svector.entries v)
  | Container.Mat (dt, out) ->
    let temp = Expr.unify (Dtype.P dt) temp in
    let m =
      match temp with
      | Container.Mat (_, _) -> Container.as_matrix dt temp
      | Container.Vec _ -> derr "assigning a vector result to a matrix"
    in
    if Smatrix.shape m <> Smatrix.shape out then
      derr "assigning a %dx%d result to a %dx%d matrix" (Smatrix.nrows m)
        (Smatrix.ncols m) (Smatrix.nrows out) (Smatrix.ncols out);
    let t = Array.init (Smatrix.nrows m) (Smatrix.row_entries m) in
    Output.write_matrix ~mask:(mmask_of spec) ~accum:(accum_binop dt accum)
      ~replace ~out ~t

let prune_mask target mask =
  (* structural pruning only applies to matrix targets *)
  match target with
  | Container.Mat _ -> mask_spec mask
  | Container.Vec _ -> None

let set ?mask ?replace target expr =
  let replace =
    match replace with Some r -> r | None -> Context.replace_flag ()
  in
  let temp = Expr.force ?mask:(prune_mask target mask) expr in
  write ?mask ~replace target temp

let update ?mask ?accum target expr =
  let accum =
    match accum with
    | Some a -> Some a
    | None -> (
      match Context.current_accum () with
      | Some a -> Some a
      | None -> Some "Plus")
  in
  let temp = Expr.force ?mask:(prune_mask target mask) expr in
  write ?mask ?accum ~replace:false target temp

let assign_scalar ?mask ?replace ?(rows = Index_set.All)
    ?(cols = Index_set.All) target s =
  let replace =
    match replace with Some r -> r | None -> Context.replace_flag ()
  in
  let spec = mask_spec mask in
  match target with
  | Container.Vec (dt, out) ->
    Assign.vector_scalar ~mask:(vmask_of spec) ~replace ~out
      (Dtype.of_float dt s) rows
  | Container.Mat (dt, out) ->
    Assign.matrix_scalar ~mask:(mmask_of spec) ~replace ~out
      (Dtype.of_float dt s) rows cols

let set_region ?mask ?replace ?accum ~rows ?(cols = Index_set.All) target expr
    =
  let replace =
    match replace with Some r -> r | None -> Context.replace_flag ()
  in
  let spec = mask_spec mask in
  let temp = Expr.force expr in
  match target with
  | Container.Vec (dt, out) ->
    let temp = Expr.unify (Dtype.P dt) temp in
    let v =
      match temp with
      | Container.Vec (_, _) -> Container.as_vector dt temp
      | Container.Mat _ -> derr "assigning a matrix result into a vector region"
    in
    Assign.vector ~mask:(vmask_of spec) ?accum:(accum_binop dt accum) ~replace
      ~out v rows
  | Container.Mat (dt, out) ->
    let temp = Expr.unify (Dtype.P dt) temp in
    let m =
      match temp with
      | Container.Mat (_, _) -> Container.as_matrix dt temp
      | Container.Vec _ -> derr "assigning a vector result into a matrix region"
    in
    Assign.matrix ~mask:(mmask_of spec) ?accum:(accum_binop dt accum) ~replace
      ~out m rows cols

let reduce = Expr.reduce_scalar
let apply = Expr.apply
let reduce_rows = Expr.reduce_rows
let transpose = Expr.transpose
let select = Expr.select

module Infix = struct
  let ( !! ) c = Expr.of_container c
  let ( @. ) a b = Expr.matmul a b
  let ( +: ) a b = Expr.add a b
  let ( *: ) a b = Expr.mult a b
  let tr x = Expr.transpose x
  let ( ~~ ) c = Mask_complement c
  let mask c = Mask c
end
