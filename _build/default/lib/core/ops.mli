(** Terminating operations: assignment of deferred expressions into
    containers with full mask/accumulate/replace semantics — the DSL's
    [C[M, z] = ...] / [C[None] += ...] forms (Table I, column 3) — plus
    scalar and region assignment and the infix sugar. *)

open Gbtl

type mask = Mask of Container.t | Mask_complement of Container.t
(** [C[m] = ...] vs [C[~m] = ...]; values are coerced to booleans. *)

exception Dsl_error of string

val set : ?mask:mask -> ?replace:bool -> Container.t -> Expr.t -> unit
(** [C[M, z] = expr].  The replace flag defaults to the context's
    [gb.Replace] entry.  The expression result is upcast/downcast into
    [C]'s dtype.  A mask on a matrix [@] expression reaches the [mxm]
    kernel for structural pruning before the write step. *)

val update : ?mask:mask -> ?accum:string -> Container.t -> Expr.t -> unit
(** [C[M] += expr] — accumulator from the argument, else the context
    (accumulator entry, or the nearest monoid/semiring's ⊕), else Plus. *)

val assign_scalar :
  ?mask:mask ->
  ?replace:bool ->
  ?rows:Index_set.t ->
  ?cols:Index_set.t ->
  Container.t ->
  float ->
  unit
(** [C[M](I,J) = s] — constant fill over a region (defaults to all
    indices); the BFS [levels<frontier> = depth] and PageRank
    [new_rank[:] = c] idioms. *)

val set_region :
  ?mask:mask ->
  ?replace:bool ->
  ?accum:string ->
  rows:Index_set.t ->
  ?cols:Index_set.t ->
  Container.t ->
  Expr.t ->
  unit
(** [C[M](I,J) = expr] — GrB_assign into a sub-region. *)

val reduce : Expr.t -> float
(** [s = reduce(expr)] with the context monoid (a terminating op). *)

val apply : ?f:Jit.Op_spec.unary -> Expr.t -> Expr.t
val reduce_rows : Expr.t -> Expr.t
val transpose : Expr.t -> Expr.t
val select : Gbtl.Select.predicate -> Expr.t -> Expr.t

module Infix : sig
  val ( !! ) : Container.t -> Expr.t
  (** Lift a container into an expression. *)

  val ( @. ) : Expr.t -> Expr.t -> Expr.t
  (** Matrix multiply (Python's [@]) with the context semiring. *)

  val ( +: ) : Expr.t -> Expr.t -> Expr.t
  (** eWiseAdd with the context binary operator. *)

  val ( *: ) : Expr.t -> Expr.t -> Expr.t
  (** eWiseMult. *)

  val tr : Expr.t -> Expr.t
  (** [A.T]. *)

  val ( ~~ ) : Container.t -> mask
  (** Complemented mask ([C[~m] = ...]). *)

  val mask : Container.t -> mask
end
