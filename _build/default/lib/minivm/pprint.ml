open Ast

let rec expr = function
  | Const v -> Value.to_string v
  | Var name -> name
  | Unary ("not", e) -> Printf.sprintf "not %s" (expr e)
  | Unary (op, e) -> Printf.sprintf "%s%s" op (expr e)
  | Binary (op, a, b) -> Printf.sprintf "%s %s %s" (expr a) op (expr b)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" (expr f) (String.concat ", " (List.map expr args))
  | Method (obj, name, args) ->
    Printf.sprintf "%s.%s(%s)" (expr obj) name
      (String.concat ", " (List.map expr args))
  | Attr (obj, name) -> Printf.sprintf "%s.%s" (expr obj) name
  | Index (obj, Var "AllIndices") -> Printf.sprintf "%s[:]" (expr obj)
  | Index (obj, k) -> Printf.sprintf "%s[%s]" (expr obj) (expr k)
  | ListLit es ->
    Printf.sprintf "[%s]" (String.concat ", " (List.map expr es))
  | Lambda (params, _) ->
    Printf.sprintf "lambda %s: ..." (String.concat ", " params)

let key = function
  | Const Value.Nil -> "None"
  | Var "AllIndices" -> ":"
  | k -> expr k

let rec stmt indent s =
  let pad = String.make indent ' ' in
  match s with
  | ExprStmt (Method (obj, "update", [ m; e ])) ->
    (* the __iadd__ spelling *)
    Printf.sprintf "%s%s[%s] += %s" pad (expr obj) (key m) (expr e)
  | ExprStmt e -> pad ^ expr e
  | Assign (name, e) -> Printf.sprintf "%s%s = %s" pad name (expr e)
  | SetIndex (obj, k, v) ->
    Printf.sprintf "%s%s[%s] = %s" pad (expr obj) (key k) (expr v)
  | SetAttr (obj, name, v) ->
    Printf.sprintf "%s%s.%s = %s" pad (expr obj) name (expr v)
  | If (cond, then_, []) ->
    Printf.sprintf "%sif %s:\n%s" pad (expr cond) (block (indent + 4) then_)
  | If (cond, then_, else_) ->
    Printf.sprintf "%sif %s:\n%s\n%selse:\n%s" pad (expr cond)
      (block (indent + 4) then_)
      pad
      (block (indent + 4) else_)
  | While (cond, body) ->
    Printf.sprintf "%swhile %s:\n%s" pad (expr cond) (block (indent + 4) body)
  | For (name, iter, body) ->
    Printf.sprintf "%sfor %s in %s:\n%s" pad name (expr iter)
      (block (indent + 4) body)
  | With (ctxs, body) ->
    Printf.sprintf "%swith %s:\n%s" pad
      (String.concat ", " (List.map expr ctxs))
      (block (indent + 4) body)
  | Def (name, params, body) ->
    Printf.sprintf "%sdef %s(%s):\n%s" pad name (String.concat ", " params)
      (block (indent + 4) body)
  | Return e -> Printf.sprintf "%sreturn %s" pad (expr e)
  | Break -> pad ^ "break"
  | Continue -> pad ^ "continue"
  | Pass -> pad ^ "pass"

and block indent stmts = String.concat "\n" (List.map (stmt indent) stmts)

let program stmts = block 0 stmts ^ "\n"
