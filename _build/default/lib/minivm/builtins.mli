(** Global builtins seeded into a fresh MiniVM environment: [print],
    [len], [range], [abs], [min], [max], [float], [int], [str],
    [append]-free list helpers. *)

val install : Env.t -> unit
