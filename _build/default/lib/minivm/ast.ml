type expr =
  | Const of Value.t
  | Var of string
  | Unary of string * expr
  | Binary of string * expr * expr
  | Call of expr * expr list
  | Method of expr * string * expr list
  | Attr of expr * string
  | Index of expr * expr
  | ListLit of expr list
  | Lambda of string list * block

and stmt =
  | ExprStmt of expr
  | Assign of string * expr
  | SetIndex of expr * expr * expr
  | SetAttr of expr * string * expr
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * block
  | With of expr list * block
  | Def of string * string list * block
  | Return of expr
  | Break
  | Continue
  | Pass

and block = stmt list
