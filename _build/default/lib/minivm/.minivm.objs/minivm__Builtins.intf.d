lib/minivm/builtins.mli: Env
