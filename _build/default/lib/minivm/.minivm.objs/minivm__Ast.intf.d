lib/minivm/ast.mli: Value
