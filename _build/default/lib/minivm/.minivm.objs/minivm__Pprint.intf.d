lib/minivm/pprint.mli: Ast
