lib/minivm/value.mli: Hashtbl Obj
