lib/minivm/env.ml: Hashtbl Value
