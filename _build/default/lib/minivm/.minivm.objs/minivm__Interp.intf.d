lib/minivm/interp.mli: Ast Env Value
