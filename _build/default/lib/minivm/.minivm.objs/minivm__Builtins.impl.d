lib/minivm/builtins.ml: Array Env Hashtbl List Printf String Value
