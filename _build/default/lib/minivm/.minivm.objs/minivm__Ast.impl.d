lib/minivm/ast.ml: Value
