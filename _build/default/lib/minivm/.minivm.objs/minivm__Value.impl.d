lib/minivm/value.ml: Array Hashtbl List Obj Printf String
