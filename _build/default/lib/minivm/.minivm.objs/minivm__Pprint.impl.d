lib/minivm/pprint.ml: Ast List Printf String Value
