lib/minivm/env.mli: Value
