lib/minivm/interp.ml: Array Ast Builtins Env Fun Hashtbl List Obj Printf Value
