(** Program representation of the MiniVM.  Programs are constructed as
    OCaml values (there is no parser — the tier-1 algorithm encodings in
    [Algorithms] build these trees directly, like Python bytecode stands
    behind Python source). *)

type expr =
  | Const of Value.t
  | Var of string
  | Unary of string * expr  (** "-", "not", "~" (mask complement) *)
  | Binary of string * expr * expr
      (** "+", "-", "*", "/", "@", "<", "<=", ">", ">=", "==", "!=",
          "and", "or" — dispatched on runtime tags; container operands are
          routed to the foreign hook (the DSL bridge) *)
  | Call of expr * expr list
  | Method of expr * string * expr list
  | Attr of expr * string
  | Index of expr * expr
  | ListLit of expr list
  | Lambda of string list * block

and stmt =
  | ExprStmt of expr
  | Assign of string * expr
  | SetIndex of expr * expr * expr  (** [obj[k] = v] — container assign with
                                        masks goes through here *)
  | SetAttr of expr * string * expr
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * block
  | With of expr list * block  (** operator context managers *)
  | Def of string * string list * block
  | Return of expr
  | Break
  | Continue
  | Pass

and block = stmt list
