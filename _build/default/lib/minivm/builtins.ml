open Value

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let b name f = Builtin (name, f)

let as_num = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> err "expected number, got %s" (type_name v)

let install env =
  let def name f = Env.define env name (b name f) in
  def "print" (fun args ->
      print_endline (String.concat " " (List.map to_string args));
      Nil);
  def "len" (function
    | [ List l ] -> Int (Array.length !l)
    | [ Str s ] -> Int (String.length s)
    | [ Dict d ] -> Int (Hashtbl.length d)
    | _ -> err "len: expected a container");
  def "range" (function
    | [ Int n ] -> List (ref (Array.init (max n 0) (fun i -> Int i)))
    | [ Int a; Int z ] ->
      List (ref (Array.init (max (z - a) 0) (fun i -> Int (a + i))))
    | _ -> err "range: expected int bounds");
  def "abs" (function
    | [ Int i ] -> Int (abs i)
    | [ Float f ] -> Float (abs_float f)
    | _ -> err "abs: expected a number");
  def "min" (function
    | [ a; b ] -> if as_num a <= as_num b then a else b
    | _ -> err "min: expected two numbers");
  def "max" (function
    | [ a; b ] -> if as_num a >= as_num b then a else b
    | _ -> err "max: expected two numbers");
  def "float" (function
    | [ v ] -> Float (as_num v)
    | _ -> err "float: expected one argument");
  def "int" (function
    | [ Float f ] -> Int (int_of_float f)
    | [ Int i ] -> Int i
    | [ Bool b ] -> Int (if b then 1 else 0)
    | _ -> err "int: expected a number");
  def "str" (function
    | [ v ] -> Str (to_string v)
    | _ -> err "str: expected one argument");
  def "list" (function
    | [ Int n ] -> List (ref (Array.make (max n 0) Nil))
    | [] -> List (ref [||])
    | _ -> err "list: expected a size or nothing")
