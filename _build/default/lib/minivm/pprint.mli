(** Render MiniVM programs as Python-like source — what the tier-1
    encodings "would look like" in PyGB.  Used by examples and docs to
    show that the interpreted benchmark programs match the paper's
    listings line for line. *)

val expr : Ast.expr -> string
val program : Ast.block -> string
